//! One module per paper figure, plus the shared sweep-grid runner.

pub mod fig01;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;

use crate::scale::Scale;
use crate::sweep::{average_results, sweep, AveragedResult, Cell};
use ge_core::{Algorithm, SimConfig};
use ge_metrics::Table;
use ge_workload::WorkloadConfig;

/// One line/series in a figure: an algorithm under a (possibly modified)
/// configuration.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Series label (the paper's legend entry).
    pub label: String,
    /// Platform configuration for this series.
    pub sim: SimConfig,
    /// The algorithm to run.
    pub algorithm: Algorithm,
    /// Use the Fig. 4 random 150–500 ms deadline windows.
    pub random_windows: bool,
}

impl Variant {
    /// A plain paper-default variant of `algorithm`.
    pub fn plain(algorithm: Algorithm, scale: &Scale) -> Self {
        Variant {
            label: algorithm.label().to_string(),
            sim: SimConfig {
                horizon: scale.horizon(),
                ..SimConfig::paper_default()
            },
            algorithm,
            random_windows: false,
        }
    }
}

/// Seed-averaged results over a `rates × variants` grid.
#[derive(Debug, Clone)]
pub struct Grid {
    /// The swept arrival rates.
    pub rates: Vec<f64>,
    /// Series labels, in variant order.
    pub labels: Vec<String>,
    /// `results[rate_idx][variant_idx]`.
    pub results: Vec<Vec<AveragedResult>>,
}

impl Grid {
    /// Runs the full grid (parallel across all cells).
    pub fn run(scale: &Scale, rates: &[f64], variants: &[Variant]) -> Grid {
        let mut cells = Vec::new();
        for &rate in rates {
            for v in variants {
                for rep in 0..scale.replications {
                    let wc = if v.random_windows {
                        WorkloadConfig::paper_random_windows(rate)
                    } else {
                        WorkloadConfig::paper_default(rate)
                    };
                    cells.push(Cell {
                        sim: v.sim.clone(),
                        workload: WorkloadConfig {
                            horizon: scale.horizon(),
                            ..wc
                        },
                        algorithm: v.algorithm.clone(),
                        seed: scale.root_seed + rep,
                    });
                }
            }
        }
        let flat = sweep(&cells);

        let reps = scale.replications as usize;
        let mut results = Vec::with_capacity(rates.len());
        let mut idx = 0;
        for _ in rates {
            let mut row = Vec::with_capacity(variants.len());
            for _ in variants {
                row.push(average_results(&flat[idx..idx + reps]));
                idx += reps;
            }
            results.push(row);
        }
        Grid {
            rates: rates.to_vec(),
            labels: variants.iter().map(|v| v.label.clone()).collect(),
            results,
        }
    }

    /// Builds a table of `metric` against arrival rate, one column per
    /// series.
    pub fn table(
        &self,
        title: &str,
        metric: impl Fn(&AveragedResult) -> f64,
        precision: usize,
    ) -> Table {
        let mut columns = vec!["arrival_rate".to_string()];
        columns.extend(self.labels.iter().cloned());
        let mut t = Table::new(title, columns);
        for (i, &rate) in self.rates.iter().enumerate() {
            let mut row = vec![rate];
            row.extend(self.results[i].iter().map(&metric));
            t.push_numeric_row(&row, precision);
        }
        t
    }

    /// Quality-vs-rate table (Figs. 3a, 4a, 5a, 7a, 8a, 9a, 10a, 12a).
    pub fn quality_table(&self, title: &str) -> Table {
        self.table(title, |r| r.quality, 4)
    }

    /// Energy-vs-rate table (Figs. 3b, 4b, 5b, 7b, 8b, 10b, 12b).
    pub fn energy_table(&self, title: &str) -> Table {
        self.table(title, |r| r.energy_j, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_tables() {
        let scale = Scale {
            horizon_secs: 5.0,
            replications: 1,
            rates: vec![100.0, 200.0],
            root_seed: 1,
        };
        let variants = vec![
            Variant::plain(Algorithm::Ge, &scale),
            Variant::plain(Algorithm::Be, &scale),
        ];
        let grid = Grid::run(&scale, &scale.rates.clone(), &variants);
        assert_eq!(grid.rates.len(), 2);
        assert_eq!(grid.labels, vec!["GE", "BE"]);
        assert_eq!(grid.results.len(), 2);
        assert_eq!(grid.results[0].len(), 2);

        let q = grid.quality_table("q");
        assert_eq!(q.row_count(), 2);
        let e = grid.energy_table("e");
        assert_eq!(e.row_count(), 2);
    }
}
