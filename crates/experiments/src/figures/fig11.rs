//! Fig. 11 — effect of the number of cores.
//!
//! GE on `m = 2^x` cores (x = 0…6) at a fixed arrival rate and fixed
//! total budget: few cores give limited quality at high energy (the convex
//! power curve punishes fast cores); more cores raise quality and lower
//! energy until the system saturates (paper §IV-G-3).

use crate::scale::Scale;
use crate::sweep::{average_results, sweep, Cell};
use ge_core::{Algorithm, SimConfig};
use ge_metrics::Table;
use ge_workload::WorkloadConfig;

/// The core-count exponents (m = 2^x).
pub const EXPONENTS: [u32; 7] = [0, 1, 2, 3, 4, 5, 6];

/// The fixed arrival rate used for the sweep (the paper's critical load).
pub const FIXED_RATE: f64 = 154.0;

/// Runs the experiment; returns the quality (11a) and energy (11b) tables.
pub fn run(scale: &Scale) -> Vec<Table> {
    let rows = results(scale);
    let mut qt = Table::with_headers(
        "Fig 11a: GE service quality vs number of cores (2^x)",
        &["log2_cores", "cores", "quality"],
    );
    let mut et = Table::with_headers(
        "Fig 11b: GE energy (J) vs number of cores (2^x)",
        &["log2_cores", "cores", "energy_j"],
    );
    for (x, avg) in EXPONENTS.iter().zip(&rows) {
        let m = 2u32.pow(*x) as f64;
        qt.push_numeric_row(&[*x as f64, m, avg.quality], 4);
        et.push_numeric_row(&[*x as f64, m, avg.energy_j], 1);
    }
    vec![qt, et]
}

/// Per-core-count averaged results, in [`EXPONENTS`] order.
pub fn results(scale: &Scale) -> Vec<crate::sweep::AveragedResult> {
    let mut cells = Vec::new();
    for &x in &EXPONENTS {
        for rep in 0..scale.replications {
            cells.push(Cell {
                sim: SimConfig {
                    cores: 2usize.pow(x),
                    horizon: scale.horizon(),
                    ..SimConfig::paper_default()
                },
                workload: WorkloadConfig {
                    horizon: scale.horizon(),
                    ..WorkloadConfig::paper_default(FIXED_RATE)
                },
                algorithm: Algorithm::Ge,
                seed: scale.root_seed + rep,
            });
        }
    }
    let flat = sweep(&cells);
    let reps = scale.replications as usize;
    EXPONENTS
        .iter()
        .enumerate()
        .map(|(i, _)| average_results(&flat[i * reps..(i + 1) * reps]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_cores_help_quality() {
        let scale = Scale {
            horizon_secs: 15.0,
            replications: 1,
            rates: vec![],
            root_seed: 37,
        };
        let rows = results(&scale);
        let q1 = rows[0].quality; // 1 core
        let q16 = rows[4].quality; // 16 cores
        assert!(
            q16 > q1,
            "16 cores ({q16}) must beat 1 core ({q1}) at the same budget"
        );
    }

    #[test]
    fn table_shapes() {
        let scale = Scale {
            horizon_secs: 5.0,
            replications: 1,
            rates: vec![],
            root_seed: 37,
        };
        let tables = run(&scale);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].row_count(), EXPONENTS.len());
    }
}
