//! Fig. 3 — "Quality and energy comparison of different scheduling
//! algorithms" (fixed 150 ms response windows).
//!
//! Six algorithms: GE, OQ, BE, FCFS, LJF, SJF. Expected shapes (paper
//! §IV-C): GE holds ≈ `Q_GE` until overload with the least energy among
//! quality-satisfying algorithms (up to 23.9 % below BE); LJF/SJF have the
//! worst quality; SJF's energy *falls* with load as it discards long jobs.

use crate::figures::{Grid, Variant};
use crate::scale::Scale;
use ge_core::Algorithm;
use ge_metrics::Table;

/// Runs the experiment; returns the quality (3a) and energy (3b) tables.
pub fn run(scale: &Scale) -> Vec<Table> {
    let grid = grid(scale);
    vec![
        grid.quality_table("Fig 3a: service quality vs arrival rate (fixed windows)"),
        grid.energy_table("Fig 3b: energy consumption (J) vs arrival rate (fixed windows)"),
    ]
}

/// The underlying grid (exposed for integration tests and benches).
pub fn grid(scale: &Scale) -> Grid {
    let variants: Vec<Variant> = Algorithm::fig3_set()
        .into_iter()
        .map(|a| Variant::plain(a, scale))
        .collect();
    Grid::run(scale, &scale.rates, &variants)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ge_saves_energy_and_holds_quality() {
        let scale = Scale {
            horizon_secs: 20.0,
            replications: 1,
            rates: vec![150.0],
            root_seed: 5,
        };
        let g = grid(&scale);
        let by_label = |label: &str| {
            let i = g.labels.iter().position(|l| l == label).unwrap();
            &g.results[0][i]
        };
        let ge = by_label("GE");
        let be = by_label("BE");
        assert!(ge.quality > 0.85, "GE quality {}", ge.quality);
        assert!(be.quality > ge.quality - 0.02);
        assert!(
            ge.energy_j < be.energy_j,
            "GE {} vs BE {}",
            ge.energy_j,
            be.energy_j
        );
    }

    #[test]
    fn two_tables() {
        let scale = Scale {
            horizon_secs: 5.0,
            replications: 1,
            rates: vec![150.0],
            root_seed: 5,
        };
        assert_eq!(run(&scale).len(), 2);
    }
}
