//! Fig. 1 — "The execution time percentage of the AES mode."
//!
//! GE's energy savings hinge on spending most of the run in AES. The
//! paper's Fig. 1 plots the AES residency fraction against arrival rate:
//! near-total at light load, collapsing as the system approaches overload
//! (the compensation policy keeps forcing BQ to defend `Q_GE`).

use crate::figures::{Grid, Variant};
use crate::scale::Scale;
use ge_core::Algorithm;
use ge_metrics::Table;

/// Runs the experiment; returns one table (AES fraction vs rate).
pub fn run(scale: &Scale) -> Vec<Table> {
    let variants = vec![Variant::plain(Algorithm::Ge, scale)];
    let grid = Grid::run(scale, &scale.rates, &variants);
    vec![grid.table(
        "Fig 1: AES-mode residency of GE vs arrival rate",
        |r| r.aes_fraction,
        4,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes_residency_declines_with_load() {
        let scale = Scale {
            horizon_secs: 20.0,
            replications: 1,
            rates: vec![100.0, 250.0],
            root_seed: 3,
        };
        let variants = vec![Variant::plain(Algorithm::Ge, &scale)];
        let grid = Grid::run(&scale, &scale.rates.clone(), &variants);
        let light = grid.results[0][0].aes_fraction;
        let heavy = grid.results[1][0].aes_fraction;
        assert!(
            light > heavy,
            "AES residency should fall with load: light={light} heavy={heavy}"
        );
        assert!(light > 0.5, "light load should be mostly AES: {light}");
    }

    #[test]
    fn produces_one_table() {
        let scale = Scale {
            horizon_secs: 5.0,
            replications: 1,
            rates: vec![150.0],
            root_seed: 3,
        };
        let tables = run(&scale);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].row_count(), 1);
    }
}
