//! A clairvoyant offline planner — the practical yardstick above the
//! Jensen bound.
//!
//! The paper's GE is an *online* algorithm: it sees jobs as they arrive,
//! monitors quality after the fact, and re-plans at trigger events. A
//! natural question for any online scheduler is the *price of not knowing
//! the future*. This module computes the schedule an omniscient planner
//! would build with the same mechanisms GE uses, given the entire trace
//! up front:
//!
//! 1. **Global LF cut** over all jobs at once (instead of per-core,
//!    per-epoch batches): the work-minimal allocation achieving exactly
//!    `Q_GE` over the whole run.
//! 2. **C-RR assignment** of jobs to cores in release order (the same
//!    balanced, no-migration placement).
//! 3. **Whole-horizon Energy-OPT (YDS)** per core over the true releases
//!    and deadlines — one globally-optimal speed plan per core instead of
//!    stitched per-epoch plans.
//!
//! The result is feasible for the machine model except possibly the
//! *instantaneous* power-budget coupling (YDS per core does not know
//! about `H`); [`ClairvoyantOutcome::peak_power_w`] reports the plan's
//! worst instantaneous draw so callers can check whether the budget
//! constraint was actually binding. Pre-overload, with targets cut to
//! `Q_GE`, it practically never is.

use crate::config::SimConfig;
use ge_power::{yds_schedule, PolynomialPower, PowerModel, SpeedProfile, YdsJob};
use ge_quality::{lf_cut, ExpConcave};
use ge_server::CrrAssigner;
use ge_simcore::SimTime;
use ge_workload::Trace;

/// The clairvoyant plan's headline numbers.
#[derive(Debug, Clone)]
pub struct ClairvoyantOutcome {
    /// Total planned energy (joules).
    pub energy_j: f64,
    /// Aggregate quality `Σ f(c_j) / Σ f(p_j)` of the global cut.
    pub quality: f64,
    /// Worst instantaneous total power across the plan (watts). Compare
    /// with the budget `H` to see whether the (ignored) coupling bound.
    pub peak_power_w: f64,
    /// Total retained volume `Σ c_j` (processing units).
    pub retained_units: f64,
    /// Per-core planned energy (joules).
    pub core_energy_j: Vec<f64>,
}

/// Plans the whole trace offline and returns the outcome.
pub fn clairvoyant_plan(cfg: &SimConfig, trace: &Trace) -> ClairvoyantOutcome {
    cfg.validate();
    let model = PolynomialPower::new(cfg.power_a, cfg.power_beta);
    let f = ExpConcave::new(cfg.quality_c, cfg.quality_xmax);

    if trace.is_empty() {
        return ClairvoyantOutcome {
            energy_j: 0.0,
            quality: 1.0,
            peak_power_w: 0.0,
            retained_units: 0.0,
            core_energy_j: vec![0.0; cfg.cores],
        };
    }

    // 1. Global LF cut.
    let demands: Vec<f64> = trace.jobs().iter().map(|j| j.demand).collect();
    let cut = lf_cut(&f, &demands, cfg.q_ge);

    // 2. C-RR placement in release order.
    let mut assigner = CrrAssigner::new(cfg.cores);
    let mut per_core: Vec<Vec<YdsJob>> = vec![Vec::new(); cfg.cores];
    for (job, &target) in trace.jobs().iter().zip(&cut.cut_demands) {
        let core = assigner.assign_one();
        if target > 1e-9 {
            let slot = &mut per_core[core];
            let id = slot.len();
            slot.push(YdsJob::new(
                id,
                job.release.as_secs(),
                job.deadline.as_secs(),
                target / cfg.units_per_ghz_sec,
            ));
        }
    }

    // 3. Whole-horizon YDS per core.
    let plans: Vec<SpeedProfile> = per_core
        .iter()
        .map(|jobs| yds_schedule(jobs).profile)
        .collect();

    let core_energy_j: Vec<f64> = plans
        .iter()
        .map(|p| match p.end() {
            None => 0.0,
            Some(end) => p.energy(&model, SimTime::ZERO, end),
        })
        .collect();
    let energy_j = core_energy_j.iter().sum();

    // Peak total power: evaluate at every segment boundary of any core
    // (total power is piecewise constant between boundaries).
    let mut boundaries: Vec<f64> = plans
        .iter()
        .flat_map(|p| {
            p.segments()
                .iter()
                .flat_map(|s| [s.start.as_secs(), s.end.as_secs()])
        })
        .collect();
    boundaries.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    boundaries.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let mut peak_power_w = 0.0f64;
    for w in boundaries.windows(2) {
        let mid = SimTime::from_secs(0.5 * (w[0] + w[1]));
        let total: f64 = plans.iter().map(|p| model.power(p.speed_at(mid))).sum();
        peak_power_w = peak_power_w.max(total);
    }

    ClairvoyantOutcome {
        energy_j,
        quality: cut.achieved_quality,
        peak_power_w,
        retained_units: cut.cut_demands.iter().sum(),
        core_energy_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run;
    use crate::policy::Algorithm;
    use ge_workload::{WorkloadConfig, WorkloadGenerator};

    fn cfg(horizon: f64) -> SimConfig {
        SimConfig {
            horizon: SimTime::from_secs(horizon),
            ..SimConfig::paper_default()
        }
    }

    fn trace(rate: f64, horizon: f64, seed: u64) -> Trace {
        WorkloadGenerator::new(
            WorkloadConfig {
                horizon: SimTime::from_secs(horizon),
                ..WorkloadConfig::paper_default(rate)
            },
            seed,
        )
        .generate()
    }

    #[test]
    fn achieves_exactly_q_ge() {
        let c = cfg(15.0);
        let t = trace(130.0, 15.0, 1);
        let plan = clairvoyant_plan(&c, &t);
        assert!((plan.quality - c.q_ge).abs() < 1e-6);
    }

    #[test]
    fn beats_online_ge_on_energy() {
        // Hindsight must not lose to online play at the same quality.
        let c = cfg(20.0);
        let t = trace(140.0, 20.0, 2);
        let plan = clairvoyant_plan(&c, &t);
        let ge = run(&c, &t, &Algorithm::Ge);
        assert!(ge.quality >= c.q_ge - 0.01, "GE met the target");
        assert!(
            plan.energy_j <= ge.energy_j + 1e-6,
            "clairvoyant {} must not exceed online GE {}",
            plan.energy_j,
            ge.energy_j
        );
    }

    #[test]
    fn respects_power_budget_pre_overload() {
        let c = cfg(15.0);
        let t = trace(120.0, 15.0, 3);
        let plan = clairvoyant_plan(&c, &t);
        assert!(
            plan.peak_power_w <= c.budget_w + 1e-6,
            "peak draw {} exceeds budget {}",
            plan.peak_power_w,
            c.budget_w
        );
    }

    #[test]
    fn empty_trace() {
        let plan = clairvoyant_plan(&cfg(10.0), &Trace::default());
        assert_eq!(plan.energy_j, 0.0);
        assert_eq!(plan.quality, 1.0);
        assert_eq!(plan.core_energy_j.len(), 16);
    }

    #[test]
    fn per_core_energies_sum_to_total() {
        let c = cfg(10.0);
        let t = trace(150.0, 10.0, 4);
        let plan = clairvoyant_plan(&c, &t);
        let sum: f64 = plan.core_energy_j.iter().sum();
        assert!((sum - plan.energy_j).abs() < 1e-6);
    }

    #[test]
    fn retained_volume_below_full_demand() {
        let c = cfg(10.0);
        let t = trace(150.0, 10.0, 5);
        let plan = clairvoyant_plan(&c, &t);
        let full: f64 = t.jobs().iter().map(|j| j.demand).sum();
        assert!(plan.retained_units < full);
        assert!(plan.retained_units > 0.0);
    }
}
