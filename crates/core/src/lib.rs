//! # ge-core — the Good Enough (GE) scheduling algorithm
//!
//! The paper's primary contribution, its baselines, and the online
//! simulation driver that ties the substrates together:
//!
//! * [`config`] — [`SimConfig`]: every §IV-B platform/workload constant in
//!   one place (cores, budget, power constants, quality function, `Q_GE`,
//!   triggers, critical load, horizon, optional discrete DVFS).
//! * [`policy`] — the [`Scheduler`] trait all algorithms implement, plus
//!   the [`Algorithm`] catalogue (GE and every comparison policy from
//!   §IV-A: OQ, BE, BE-P, BE-S, FCFS, FDFS, LJF, SJF, and GE ablations).
//! * [`ge`] — the GE scheduler itself: AES/BQ mode controller with the
//!   compensation policy, Longest-First job cutting, hybrid ES/WF power
//!   distribution, Quality-OPT second cut, Energy-OPT (YDS) execution
//!   planning, C-RR assignment.
//! * [`baselines`] — best-effort family (BE/OQ/BE-P/BE-S via GE machinery
//!   with policy knobs) and the four single-job queue policies.
//! * [`driver`] — the event loop: arrivals, quantum/counter/idle triggers,
//!   queue-expiry, quality monitoring, speed sampling, energy metering.
//! * [`result`] — [`RunResult`]: the measurements every figure is built
//!   from.
//! * [`clairvoyant`] — an offline hindsight planner quantifying the price
//!   of online play (extension beyond the paper).
//!
//! ## Quick start
//!
//! ```
//! use ge_core::{run, Algorithm, SimConfig};
//! use ge_workload::{WorkloadConfig, WorkloadGenerator};
//!
//! let cfg = SimConfig::paper_default();
//! let trace = WorkloadGenerator::new(
//!     WorkloadConfig::paper_default(150.0), 42,
//! ).generate();
//! let result = run(&cfg, &trace, &Algorithm::Ge);
//! assert!(result.quality >= 0.85); // ≈ Q_GE = 0.9
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod baselines;
pub mod clairvoyant;
pub mod config;
pub mod driver;
pub mod ge;
pub mod policy;
pub mod result;
pub mod resume;
pub mod shard;

pub use clairvoyant::{clairvoyant_plan, ClairvoyantOutcome};
pub use config::{PowerPolicy, SimConfig};
pub use driver::{
    run, run_scheduler_with_sink, run_simulation, run_traced, run_with_faults, run_with_sink,
    RunTrace, TrajectorySink,
};
pub use ge::GeScheduler;
pub use policy::{Algorithm, ScheduleCtx, Scheduler, TriggerSet, MODE_AES, MODE_BQ};
pub use result::RunResult;
pub use resume::{resume_from, run_resumable, CheckpointPolicy, ResumableOutcome, ResumableRun};
pub use shard::{ShardEngine, ShardOutcome};
