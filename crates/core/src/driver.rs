//! The online simulation driver.
//!
//! Couples a [`Scheduler`] policy with the substrates: workload arrivals
//! feed a waiting queue; trigger events (quantum tick, counter threshold,
//! idle core — paper §III-E) invoke the policy; the multicore server
//! executes installed plans between events; finished jobs feed the online
//! quality monitor; energy, speeds, and mode residency are metered
//! throughout.
//!
//! Event priorities at equal timestamps: arrivals are observed before core
//! checks, which are observed before the quantum tick — so a quantum epoch
//! always sees the jobs that arrived "now".
//!
//! The driver is factored as an [`Engine`] holding every piece of mutable
//! run state, advanced in segments over the shared event loop. A straight
//! run is one segment to the horizon; the checkpoint/resume layer
//! (`crate::resume`) runs the same engine in epoch-aligned segments and
//! serializes the state between them. Segment boundaries are invisible to
//! the handler — `Simulator::run_until` delivers the identical
//! `(now, event)` sequence either way — which is what makes resumed runs
//! bit-exact.

use ge_faults::{FaultInjector, FaultSchedule, FaultTransition};
use ge_power::PolynomialPower;
use ge_quality::{ExpConcave, LedgerMode, QualityFunction, QualityLedger};
use ge_server::{CoreJob, Server};
use ge_simcore::{SimContext, SimTime, Simulator};
use ge_telemetry::{SpanGuard, Telemetry};
use ge_trace::{NullSink, TraceEvent, TraceSink, TriggerKind};
use ge_workload::{Job, Trace};
use std::collections::VecDeque;

use crate::config::SimConfig;
use crate::policy::{Algorithm, ScheduleCtx, Scheduler};
use crate::result::RunResult;

/// Live-registry handles the driver feeds while telemetry is enabled.
/// Resolved once per run in [`Engine::new`]; recording is a handful of
/// relaxed atomic writes per epoch, so the hot path never touches the
/// registry mutex. Derived state: never checkpointed, rebuilt on resume.
pub(crate) struct DriverTelemetry {
    epochs: ge_telemetry::Counter,
    planning_seconds: ge_telemetry::HistogramHandle,
    jobs_shed: ge_telemetry::Counter,
    faults_injected: ge_telemetry::Counter,
    latency_dropped: ge_telemetry::Gauge,
    /// Epoch tick for sampling the planning clock: only every
    /// [`PLANNING_SAMPLE`]-th epoch pays for the two `Instant` reads,
    /// and the measured value is recorded with matching weight so the
    /// histogram's count/sum stay unbiased estimates over all epochs.
    planning_tick: std::cell::Cell<u64>,
}

/// Planning latency is clocked on one epoch in this many.
const PLANNING_SAMPLE: u64 = 8;

impl DriverTelemetry {
    fn new() -> Self {
        let r = Telemetry::registry();
        DriverTelemetry {
            epochs: r.counter("ge_epochs_total"),
            planning_seconds: r.histogram("ge_epoch_planning_seconds"),
            jobs_shed: r.counter("ge_jobs_shed_total"),
            faults_injected: r.counter("ge_faults_injected_total"),
            latency_dropped: r.gauge("ge_latency_samples_dropped"),
            planning_tick: std::cell::Cell::new(0),
        }
    }
}

/// Driver events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ev {
    /// Fault transition `k` of the injected schedule takes effect.
    Fault(usize),
    /// Job `jobs[i]` arrives.
    Arrival(usize),
    /// Periodic quantum tick.
    Quantum,
    /// Projected core completion/deadline — re-examine the server.
    CoreCheck,
}

// Faults are observed before arrivals so a job never lands on a core that
// failed "at the same instant"; arrivals before checks before the quantum
// tick so an epoch always sees the jobs that arrived "now".
pub(crate) const PRIO_FAULT: u32 = 0;
pub(crate) const PRIO_ARRIVAL: u32 = 1;
pub(crate) const PRIO_CHECK: u32 = 2;
pub(crate) const PRIO_QUANTUM: u32 = 3;

/// Per-epoch observations for trajectory analysis (see [`run_traced`]).
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    /// Monitored quality at each scheduler epoch.
    pub quality: ge_metrics::TimeSeries,
    /// Execution mode at each epoch (0 = AES, 1 = BQ).
    pub mode: ge_metrics::TimeSeries,
    /// Total outstanding work (units) right after each epoch.
    pub backlog_units: ge_metrics::TimeSeries,
    /// The driver's arrival-rate estimate at each epoch (req/s).
    pub load_estimate: ge_metrics::TimeSeries,
}

/// A [`TraceSink`] that distils the event stream back into the per-epoch
/// [`RunTrace`] trajectories — the canned sink behind [`run_traced`].
///
/// Every scheduling epoch the driver emits one
/// [`TraceEvent::QualitySample`]; this sink keeps those and ignores the
/// rest, so `run_traced` is now just one consumer of the general
/// instrumentation path.
#[derive(Debug, Clone, Default)]
pub struct TrajectorySink {
    trace: RunTrace,
}

impl TrajectorySink {
    /// Creates an empty trajectory sink.
    pub fn new() -> Self {
        TrajectorySink::default()
    }

    /// Consumes the sink, returning the accumulated trajectories.
    pub fn into_trace(self) -> RunTrace {
        self.trace
    }
}

impl TraceSink for TrajectorySink {
    fn record(&mut self, event: &TraceEvent) {
        if let TraceEvent::QualitySample {
            t,
            quality,
            mode,
            backlog_units,
            load_estimate_rps,
        } = *event
        {
            let at = SimTime::from_secs(t);
            self.trace.quality.push(at, quality);
            self.trace.mode.push(at, mode as f64);
            self.trace.backlog_units.push(at, backlog_units);
            self.trace.load_estimate.push(at, load_estimate_rps);
        }
    }
}

/// Convenience wrapper: builds the algorithm's scheduler and runs it.
pub fn run(cfg: &SimConfig, trace: &Trace, algorithm: &Algorithm) -> RunResult {
    let mut sched = algorithm.build(cfg);
    run_simulation(cfg, trace, sched.as_mut())
}

/// Like [`run`], additionally recording per-epoch trajectories — the
/// compensation policy's control dynamics made visible.
pub fn run_traced(cfg: &SimConfig, trace: &Trace, algorithm: &Algorithm) -> (RunResult, RunTrace) {
    let mut sink = TrajectorySink::new();
    let result = run_with_sink(cfg, trace, algorithm, None, &mut sink);
    (result, sink.into_trace())
}

/// Like [`run`], but injects `faults` (untraced).
pub fn run_with_faults(
    cfg: &SimConfig,
    trace: &Trace,
    algorithm: &Algorithm,
    faults: &FaultSchedule,
) -> RunResult {
    run_with_sink(cfg, trace, algorithm, Some(faults), &mut NullSink)
}

/// Like [`run`], but streams every structured decision event into `sink`
/// and, when `faults` is given, injects its failure schedule into the run.
pub fn run_with_sink(
    cfg: &SimConfig,
    trace: &Trace,
    algorithm: &Algorithm,
    faults: Option<&FaultSchedule>,
    sink: &mut dyn TraceSink,
) -> RunResult {
    let mut sched = algorithm.build(cfg);
    run_inner(cfg, trace, sched.as_mut(), faults, sink)
}

/// Runs one full simulation of `trace` under `sched` and returns the
/// measurements.
pub fn run_simulation(cfg: &SimConfig, trace: &Trace, sched: &mut dyn Scheduler) -> RunResult {
    run_inner(cfg, trace, sched, None, &mut NullSink)
}

/// Like [`run_simulation`], with fault injection and event streaming — the
/// full-control entry for callers that build (and want to inspect) the
/// scheduler themselves rather than going through [`Algorithm::build`].
pub fn run_scheduler_with_sink(
    cfg: &SimConfig,
    trace: &Trace,
    sched: &mut dyn Scheduler,
    faults: Option<&FaultSchedule>,
    sink: &mut dyn TraceSink,
) -> RunResult {
    run_inner(cfg, trace, sched, faults, sink)
}

fn run_inner(
    cfg: &SimConfig,
    trace: &Trace,
    sched: &mut dyn Scheduler,
    faults: Option<&FaultSchedule>,
    sink: &mut dyn TraceSink,
) -> RunResult {
    let mut engine = Engine::new(cfg, trace, faults, sched.current_mode());
    engine.emit_run_start(sched, sink);
    let horizon = engine.horizon;
    engine.advance(horizon, sched, sink);
    engine.finalize(sched, sink)
}

/// The full mutable state of one simulation run plus its (deterministic,
/// rebuildable) environment. `crate::resume` serializes every field listed
/// under "mutable run state"; the environment block is reconstructed from
/// the same `(cfg, trace, faults)` inputs on resume.
pub(crate) struct Engine {
    // -- Environment: deterministic from (cfg, trace, faults) ------------
    pub(crate) cfg: SimConfig,
    pub(crate) f: ExpConcave,
    pub(crate) horizon: SimTime,
    pub(crate) all_jobs: Vec<Job>,
    pub(crate) releases: Vec<SimTime>,

    // -- Mutable run state ----------------------------------------------
    pub(crate) sim: Simulator<Ev>,
    pub(crate) server: Server,
    pub(crate) ledger: QualityLedger,
    pub(crate) mode_tracker: ge_metrics::ModeTracker,
    pub(crate) speed_tracker: ge_metrics::SpeedTracker,
    pub(crate) latency: ge_metrics::Histogram,
    pub(crate) queue: Vec<Job>,
    pub(crate) arrivals_window: VecDeque<f64>,
    pub(crate) epochs: u64,
    pub(crate) last_t: SimTime,
    pub(crate) last_speeds: Vec<f64>,
    pub(crate) next_check: Option<SimTime>,
    pub(crate) injector: Option<FaultInjector>,
    pub(crate) orphans: Vec<CoreJob>,
    pub(crate) shed_buf: Vec<Job>,
    pub(crate) budget_factor: f64,
    pub(crate) jobs_shed: u64,

    // -- Derived observability state (never serialized) ------------------
    pub(crate) telemetry: Option<DriverTelemetry>,
}

impl Engine {
    /// Builds a fresh engine at t = 0 with all arrivals, fault transitions,
    /// and the first quantum tick pre-scheduled.
    pub(crate) fn new(
        cfg: &SimConfig,
        trace: &Trace,
        faults: Option<&FaultSchedule>,
        initial_mode: usize,
    ) -> Self {
        cfg.validate();
        let f = ExpConcave::new(cfg.quality_c, cfg.quality_xmax);
        let model = PolynomialPower::new(cfg.power_a, cfg.power_beta);
        let server = Server::new(
            cfg.cores,
            Box::new(model),
            cfg.budget_w,
            cfg.units_per_ghz_sec,
        );

        // -- Workload under faults: surge arrivals + demand misestimation -
        let mut all_jobs: Vec<Job> = trace.jobs().to_vec();
        if let Some(fs) = faults {
            all_jobs.extend(fs.surge_jobs(all_jobs.len() as u64));
            if fs.demand_noise() > 0.0 {
                for job in &mut all_jobs {
                    let est = fs.demand_estimate(job.id.index() as u64, job.demand);
                    *job = job.with_estimate(est);
                }
            }
        }
        // Release times keyed by job id (ids are dense over trace + surge).
        let mut releases = vec![SimTime::ZERO; all_jobs.len()];
        for j in &all_jobs {
            releases[j.id.index()] = j.release;
        }
        let injector = faults.map(|fs| FaultInjector::new(fs, cfg.cores));

        // The run must cover every job's deadline so each job's fate lands
        // in the ledger.
        let horizon = all_jobs
            .iter()
            .map(|j| j.deadline)
            .fold(cfg.horizon, SimTime::max);

        let mut sim: Simulator<Ev> = Simulator::new();
        for (i, job) in all_jobs.iter().enumerate() {
            sim.schedule(job.release, PRIO_ARRIVAL, Ev::Arrival(i));
        }
        if let Some(inj) = &injector {
            for (k, tr) in inj.transitions().iter().enumerate() {
                sim.schedule(tr.at, PRIO_FAULT, Ev::Fault(k));
            }
        }
        sim.schedule(SimTime::ZERO, PRIO_QUANTUM, Ev::Quantum);

        let last_speeds = server.speeds();
        Engine {
            cfg: cfg.clone(),
            f,
            horizon,
            all_jobs,
            releases,
            sim,
            server,
            ledger: QualityLedger::new(cfg.ledger_mode),
            mode_tracker: ge_metrics::ModeTracker::new(2, initial_mode, SimTime::ZERO),
            speed_tracker: ge_metrics::SpeedTracker::new(),
            latency: ge_metrics::Histogram::latency_default(),
            queue: Vec::new(),
            arrivals_window: VecDeque::new(),
            epochs: 0,
            last_t: SimTime::ZERO,
            last_speeds,
            next_check: None,
            injector,
            orphans: Vec::new(),
            shed_buf: Vec::new(),
            budget_factor: 1.0,
            jobs_shed: 0,
            telemetry: Telemetry::is_enabled().then(DriverTelemetry::new),
        }
    }

    /// Emits the `RunStart` trace event (once, before the first segment).
    pub(crate) fn emit_run_start(&self, sched: &dyn Scheduler, sink: &mut dyn TraceSink) {
        if sink.is_enabled() {
            sink.record(&TraceEvent::RunStart {
                t: 0.0,
                algorithm: sched.name().to_string(),
                cores: self.cfg.cores as u64,
                budget_w: self.cfg.budget_w,
                q_ge: self.cfg.q_ge,
                horizon_s: self.horizon.as_secs(),
                power_a: self.cfg.power_a,
                power_beta: self.cfg.power_beta,
                quality_c: self.cfg.quality_c,
                quality_xmax: self.cfg.quality_xmax,
                units_per_ghz_sec: self.cfg.units_per_ghz_sec,
                initial_mode: sched.current_mode() as u64,
                ledger_window: match self.cfg.ledger_mode {
                    LedgerMode::Cumulative => 0,
                    LedgerMode::SlidingWindow(n) => n as u64,
                },
            });
        }
    }

    /// Runs the event loop up to `until` (inclusive, within the sim-core
    /// time tolerance). Safe to call repeatedly with increasing horizons:
    /// the handler observes the same `(now, event)` sequence as a single
    /// straight run to the final horizon.
    pub(crate) fn advance(
        &mut self,
        until: SimTime,
        sched: &mut dyn Scheduler,
        sink: &mut dyn TraceSink,
    ) {
        let _span = SpanGuard::enter("engine_advance");
        let mut sim = std::mem::take(&mut self.sim);
        sim.run_until(until, |ctx, ev| self.handle(ctx, ev, sched, sink));
        self.sim = sim;
    }

    fn handle(
        &mut self,
        ctx: &mut SimContext<'_, Ev>,
        ev: Ev,
        sched: &mut dyn Scheduler,
        sink: &mut dyn TraceSink,
    ) {
        let now = ctx.now();

        // -- Accounting since the previous event ------------------------
        let dt = now.saturating_since(self.last_t).as_secs();
        if dt > 0.0 {
            self.speed_tracker.sample(&self.last_speeds, dt);
        }
        for fin in self.server.advance_all_traced(now, sink) {
            self.ledger
                .record(self.f.value(fin.processed), self.f.value(fin.full_demand));
            if fin.processed > 0.0 {
                let release = self.releases[fin.id.index()];
                self.latency
                    .record(fin.finish_time.saturating_since(release).as_secs());
            }
            if sink.is_enabled() {
                sink.record(&TraceEvent::JobFinish {
                    t: now.as_secs(),
                    job: fin.id.index() as u64,
                    processed: fin.processed,
                    full_demand: fin.full_demand,
                    discarded: fin.processed <= 0.0,
                });
            }
        }
        // Jobs that died waiting in the queue count as fully discarded.
        let (ledger, f) = (&mut self.ledger, &self.f);
        self.queue.retain(|j| {
            if j.deadline.at_or_before(now) {
                ledger.record(0.0, f.value(j.demand));
                if sink.is_enabled() {
                    sink.record(&TraceEvent::JobFinish {
                        t: now.as_secs(),
                        job: j.id.index() as u64,
                        processed: 0.0,
                        full_demand: j.demand,
                        discarded: true,
                    });
                }
                false
            } else {
                true
            }
        });
        // Orphans (preempted off failed cores) whose deadline passed get
        // partial credit for the volume they retired before the failure.
        let (ledger, f, latency, releases) =
            (&mut self.ledger, &self.f, &mut self.latency, &self.releases);
        self.orphans.retain(|j| {
            if j.deadline.at_or_before(now) {
                let credited = j.processed.min(j.full_demand);
                ledger.record(f.value(credited), f.value(j.full_demand));
                if credited > 0.0 {
                    latency.record(
                        j.deadline
                            .saturating_since(releases[j.id.index()])
                            .as_secs(),
                    );
                }
                if sink.is_enabled() {
                    sink.record(&TraceEvent::JobFinish {
                        t: now.as_secs(),
                        job: j.id.index() as u64,
                        processed: credited,
                        full_demand: j.full_demand,
                        discarded: credited <= 0.0,
                    });
                }
                false
            } else {
                true
            }
        });

        // -- Event-specific logic ----------------------------------------
        let triggers = sched.triggers();
        let mut fire: Option<TriggerKind> = None;
        match ev {
            Ev::Fault(k) => {
                if let Some(tel) = &self.telemetry {
                    tel.faults_injected.inc();
                }
                let inj = self
                    .injector
                    .as_mut()
                    .expect("fault event without injector");
                match inj.apply(k) {
                    FaultTransition::CoreDown { core } => {
                        self.orphans.extend(self.server.fail_core(core));
                        if sink.is_enabled() {
                            sink.record(&TraceEvent::CoreFault {
                                t: now.as_secs(),
                                core: core as u64,
                                online: false,
                            });
                        }
                        fire = Some(TriggerKind::Fault);
                    }
                    FaultTransition::CoreUp { core } => {
                        self.server.recover_core(core);
                        if sink.is_enabled() {
                            sink.record(&TraceEvent::CoreFault {
                                t: now.as_secs(),
                                core: core as u64,
                                online: true,
                            });
                        }
                        fire = Some(TriggerKind::Fault);
                    }
                    FaultTransition::BudgetFactor { factor } => {
                        self.budget_factor = factor;
                        if sink.is_enabled() {
                            sink.record(&TraceEvent::BudgetThrottle {
                                t: now.as_secs(),
                                factor,
                                budget_w_effective: self.cfg.budget_w * factor,
                            });
                        }
                        fire = Some(TriggerKind::Fault);
                    }
                    FaultTransition::SpeedFactor { core, factor } => {
                        self.server.set_core_speed_factor(core, factor);
                        if sink.is_enabled() {
                            sink.record(&TraceEvent::DvfsDeviation {
                                t: now.as_secs(),
                                core: core as u64,
                                factor,
                            });
                        }
                        // Actuation error is invisible to the scheduler —
                        // no replan; the next epoch simply delivers less
                        // (or more) speed than it requested.
                    }
                }
            }
            Ev::Arrival(i) => {
                let job = self.all_jobs[i];
                self.queue.push(job);
                self.arrivals_window.push_back(now.as_secs());
                if sink.is_enabled() {
                    sink.record(&TraceEvent::JobArrival {
                        t: now.as_secs(),
                        job: job.id.index() as u64,
                        deadline_s: job.deadline.as_secs(),
                        demand: job.demand,
                    });
                    if (job.estimate - job.demand).abs() > 1e-12 {
                        sink.record(&TraceEvent::DemandMisestimate {
                            t: now.as_secs(),
                            job: job.id.index() as u64,
                            estimate: job.estimate,
                            full_demand: job.demand,
                        });
                    }
                }
                if triggers.counter && self.queue.len() >= self.cfg.counter_trigger {
                    fire = Some(TriggerKind::Counter);
                }
                if fire.is_none()
                    && triggers.idle_core
                    && self.server.cores().any(|c| c.is_idle() && c.is_online())
                {
                    fire = Some(TriggerKind::IdleCore);
                }
            }
            Ev::Quantum => {
                if triggers.quantum {
                    fire = Some(TriggerKind::Quantum);
                }
                ctx.schedule(now + self.cfg.quantum, PRIO_QUANTUM, Ev::Quantum);
            }
            Ev::CoreCheck => {
                if self.next_check.is_some_and(|t| t.at_or_before(now)) {
                    self.next_check = None;
                }
                if triggers.idle_core
                    && !(self.queue.is_empty() && self.orphans.is_empty())
                    && self.server.cores().any(|c| c.is_idle() && c.is_online())
                {
                    fire = Some(TriggerKind::IdleCore);
                }
            }
        }

        if let Some(kind) = fire {
            // Arrival-rate estimate over the sliding window.
            let window = self.cfg.load_window_secs;
            while self
                .arrivals_window
                .front()
                .is_some_and(|&t0| t0 < now.as_secs() - window)
            {
                self.arrivals_window.pop_front();
            }
            let effective_window = window.min(now.as_secs().max(1e-3));
            let load_estimate_rps = self.arrivals_window.len() as f64 / effective_window;

            if sink.is_enabled() {
                sink.record(&TraceEvent::TriggerFired {
                    t: now.as_secs(),
                    kind,
                    queue_len: self.queue.len() as u64,
                });
            }
            let tel = self.telemetry.as_ref();
            let mut sctx = ScheduleCtx {
                now,
                server: &mut self.server,
                queue: &mut self.queue,
                ledger: &self.ledger,
                quality_fn: &self.f,
                load_estimate_rps,
                budget_factor: self.budget_factor,
                orphans: &mut self.orphans,
                shed: &mut self.shed_buf,
                sink: &mut *sink,
            };
            // Epoch planning time is metered around the policy call only
            // when telemetry is on (and then only on sampled epochs, so
            // the enabled path stays within the telemetry overhead
            // budget); the off path stays clock-read-free.
            if let Some(tel) = tel {
                tel.epochs.inc();
                let tick = tel.planning_tick.get().wrapping_add(1);
                tel.planning_tick.set(tick);
                if tick % PLANNING_SAMPLE == 0 {
                    let t0 = std::time::Instant::now();
                    sched.on_schedule(&mut sctx);
                    tel.planning_seconds
                        .observe_weighted(t0.elapsed().as_secs_f64(), PLANNING_SAMPLE);
                } else {
                    sched.on_schedule(&mut sctx);
                }
                if !self.shed_buf.is_empty() {
                    tel.jobs_shed.add(self.shed_buf.len() as u64);
                }
            } else {
                sched.on_schedule(&mut sctx);
            }
            // Account jobs the policy shed under its Q_min admission floor.
            for j in self.shed_buf.drain(..) {
                self.jobs_shed += 1;
                self.ledger.record(0.0, self.f.value(j.demand));
                if sink.is_enabled() {
                    sink.record(&TraceEvent::JobFinish {
                        t: now.as_secs(),
                        job: j.id.index() as u64,
                        processed: 0.0,
                        full_demand: j.demand,
                        discarded: true,
                    });
                }
            }
            self.epochs += 1;
            self.mode_tracker.switch(sched.current_mode(), now);
            if sink.is_enabled() {
                sink.record(&TraceEvent::QualitySample {
                    t: now.as_secs(),
                    quality: self.ledger.quality(),
                    mode: sched.current_mode() as u64,
                    backlog_units: self.server.total_backlog_units(),
                    load_estimate_rps,
                });
            }
        }

        // -- Re-arm the core-check event ---------------------------------
        if let Some(t) = self.server.next_event_time() {
            let earlier = match self.next_check {
                None => true,
                Some(cur) => t.before(cur),
            };
            if earlier && t.at_or_before(self.horizon) {
                ctx.schedule(t.max(now), PRIO_CHECK, Ev::CoreCheck);
                self.next_check = Some(t.max(now));
            }
        }

        self.last_speeds = self.server.speeds();
        self.last_t = now;
    }

    /// Settles all remaining work at the horizon: the final speed sample,
    /// the last execution slices, and ledger entries for every job still
    /// queued or orphaned. Idempotent — a second call finds nothing left
    /// to drain — so [`Engine::finalize`] can build on it and callers that
    /// need ledger sums before consuming the engine can invoke it early.
    pub(crate) fn close_books(&mut self, sink: &mut dyn TraceSink) {
        let end = self.horizon;
        let dt = end.saturating_since(self.last_t).as_secs();
        if dt > 0.0 {
            self.speed_tracker.sample(&self.last_speeds, dt);
        }
        self.last_t = end;
        for fin in self.server.advance_all_traced(end, sink) {
            self.ledger
                .record(self.f.value(fin.processed), self.f.value(fin.full_demand));
            if fin.processed > 0.0 {
                let release = self.releases[fin.id.index()];
                self.latency
                    .record(fin.finish_time.saturating_since(release).as_secs());
            }
            if sink.is_enabled() {
                sink.record(&TraceEvent::JobFinish {
                    t: end.as_secs(),
                    job: fin.id.index() as u64,
                    processed: fin.processed,
                    full_demand: fin.full_demand,
                    discarded: fin.processed <= 0.0,
                });
            }
        }
        for j in self.queue.drain(..) {
            self.ledger.record(0.0, self.f.value(j.demand));
            if sink.is_enabled() {
                sink.record(&TraceEvent::JobFinish {
                    t: end.as_secs(),
                    job: j.id.index() as u64,
                    processed: 0.0,
                    full_demand: j.demand,
                    discarded: true,
                });
            }
        }
        for j in self.orphans.drain(..) {
            let credited = j.processed.min(j.full_demand);
            self.ledger
                .record(self.f.value(credited), self.f.value(j.full_demand));
            if credited > 0.0 {
                self.latency.record(
                    j.deadline
                        .min(end)
                        .saturating_since(self.releases[j.id.index()])
                        .as_secs(),
                );
            }
            if sink.is_enabled() {
                sink.record(&TraceEvent::JobFinish {
                    t: end.as_secs(),
                    job: j.id.index() as u64,
                    processed: credited,
                    full_demand: j.full_demand,
                    discarded: credited <= 0.0,
                });
            }
        }

        if let Some(tel) = &self.telemetry {
            tel.latency_dropped.set(self.latency.dropped() as f64);
        }
    }

    /// Closes the books at the horizon and produces the run measurements.
    /// Call only after [`Engine::advance`] has reached the horizon.
    pub(crate) fn finalize(
        mut self,
        sched: &mut dyn Scheduler,
        sink: &mut dyn TraceSink,
    ) -> RunResult {
        self.close_books(sink);
        let end = self.horizon;
        let fractions = self.mode_tracker.fractions_at(end);
        let core_energy_cv = {
            let mut stats = ge_metrics::OnlineStats::new();
            for i in 0..self.cfg.cores {
                stats.push(self.server.core_energy(i));
            }
            if stats.mean() > 0.0 {
                stats.std_dev() / stats.mean()
            } else {
                0.0
            }
        };
        if sink.is_enabled() {
            sink.record(&TraceEvent::RunSummary {
                t: end.as_secs(),
                energy_j: self.server.total_energy(),
                quality: self.ledger.quality(),
                aes_fraction: fractions[crate::policy::MODE_AES],
                jobs_finished: self.ledger.jobs_recorded(),
                jobs_discarded: self.ledger.jobs_discarded(),
            });
        }
        RunResult {
            algorithm: sched.name().to_string(),
            quality: self.ledger.quality(),
            energy_j: self.server.total_energy(),
            jobs_finished: self.ledger.jobs_recorded(),
            jobs_discarded: self.ledger.jobs_discarded(),
            jobs_shed: self.jobs_shed,
            jobs_completed_fully: self.ledger.jobs_completed_fully(),
            aes_fraction: fractions[crate::policy::MODE_AES],
            mode_transitions: self.mode_tracker.transitions(),
            mean_speed_ghz: self.speed_tracker.mean_speed(),
            speed_variance: self.speed_tracker.speed_variance(),
            schedule_epochs: self.epochs,
            mean_latency_ms: self.latency.mean() * 1e3,
            p95_latency_ms: self.latency.quantile(0.95) * 1e3,
            p99_latency_ms: self.latency.quantile(0.99) * 1e3,
            core_energy_cv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ge_workload::{WorkloadConfig, WorkloadGenerator};

    fn small_cfg() -> SimConfig {
        SimConfig {
            horizon: SimTime::from_secs(20.0),
            ..SimConfig::paper_default()
        }
    }

    fn small_trace(rate: f64, seed: u64) -> Trace {
        let wc = WorkloadConfig {
            horizon: SimTime::from_secs(20.0),
            ..WorkloadConfig::paper_default(rate)
        };
        WorkloadGenerator::new(wc, seed).generate()
    }

    #[test]
    fn every_job_is_accounted_for() {
        let cfg = small_cfg();
        let trace = small_trace(120.0, 1);
        let r = run(&cfg, &trace, &Algorithm::Ge);
        assert_eq!(r.jobs_finished, trace.len() as u64);
    }

    #[test]
    fn ge_holds_quality_near_target_at_light_load() {
        let cfg = small_cfg();
        let trace = small_trace(100.0, 2);
        let r = run(&cfg, &trace, &Algorithm::Ge);
        assert!(
            r.quality >= 0.87 && r.quality <= 1.0,
            "GE quality {} should sit near Q_GE=0.9",
            r.quality
        );
        assert!(r.energy_j > 0.0);
    }

    #[test]
    fn be_achieves_full_quality_at_light_load() {
        let cfg = small_cfg();
        let trace = small_trace(100.0, 2);
        let r = run(&cfg, &trace, &Algorithm::Be);
        assert!(
            r.quality > 0.99,
            "BE at light load should complete ~everything, got {}",
            r.quality
        );
        assert_eq!(r.aes_fraction, 0.0, "BE never enters AES");
    }

    #[test]
    fn ge_saves_energy_vs_be() {
        let cfg = small_cfg();
        let trace = small_trace(140.0, 3);
        let ge = run(&cfg, &trace, &Algorithm::Ge);
        let be = run(&cfg, &trace, &Algorithm::Be);
        assert!(
            ge.energy_j < be.energy_j,
            "GE ({}) must save energy vs BE ({})",
            ge.energy_j,
            be.energy_j
        );
        assert!(be.quality >= ge.quality - 0.02);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = small_cfg();
        let trace = small_trace(130.0, 4);
        let a = run(&cfg, &trace, &Algorithm::Ge);
        let b = run(&cfg, &trace, &Algorithm::Ge);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.energy_j, b.energy_j);
        assert_eq!(a.schedule_epochs, b.schedule_epochs);
    }

    #[test]
    fn queue_policies_complete_jobs_at_light_load() {
        let cfg = small_cfg();
        let trace = small_trace(60.0, 5);
        for alg in [
            Algorithm::Fcfs,
            Algorithm::Fdfs,
            Algorithm::Ljf,
            Algorithm::Sjf,
        ] {
            let r = run(&cfg, &trace, &alg);
            assert_eq!(r.jobs_finished, trace.len() as u64, "{}", alg.label());
            assert!(
                r.quality > 0.9,
                "{} at light load should score high, got {}",
                alg.label(),
                r.quality
            );
        }
    }

    #[test]
    fn overload_degrades_queue_policies_more_than_ge() {
        let cfg = small_cfg();
        let trace = small_trace(230.0, 6);
        let ge = run(&cfg, &trace, &Algorithm::Ge);
        let sjf = run(&cfg, &trace, &Algorithm::Sjf);
        assert!(
            ge.quality > sjf.quality,
            "GE ({}) should beat SJF ({}) under overload",
            ge.quality,
            sjf.quality
        );
    }

    #[test]
    fn ge_spends_most_time_in_aes_at_light_load() {
        let cfg = small_cfg();
        let trace = small_trace(100.0, 7);
        let r = run(&cfg, &trace, &Algorithm::Ge);
        assert!(
            r.aes_fraction > 0.5,
            "light load should be mostly AES, got {}",
            r.aes_fraction
        );
    }

    #[test]
    fn latency_respects_deadline_window() {
        // Every served job finishes by its deadline (150 ms window), so
        // p99 latency must sit at or below the window (plus one histogram
        // bin of quantization).
        let cfg = small_cfg();
        let trace = small_trace(120.0, 21);
        let r = run(&cfg, &trace, &Algorithm::Ge);
        assert!(r.mean_latency_ms > 0.0, "latency must be recorded");
        assert!(
            r.p99_latency_ms <= 151.0,
            "p99 latency {}ms exceeds the 150ms window",
            r.p99_latency_ms
        );
        assert!(r.mean_latency_ms <= r.p95_latency_ms);
        assert!(r.p95_latency_ms <= r.p99_latency_ms);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_trajectories() {
        let cfg = small_cfg();
        let trace = small_trace(150.0, 31);
        let plain = run(&cfg, &trace, &Algorithm::Ge);
        let (traced, rt) = run_traced(&cfg, &trace, &Algorithm::Ge);
        // Instrumentation must not change the simulation.
        assert_eq!(plain.quality.to_bits(), traced.quality.to_bits());
        assert_eq!(plain.energy_j.to_bits(), traced.energy_j.to_bits());
        // One sample per epoch, values in range.
        assert_eq!(rt.quality.len() as u64, traced.schedule_epochs);
        assert!(rt
            .quality
            .points()
            .iter()
            .all(|&(_, q)| (0.0..=1.0).contains(&q)));
        assert!(rt.mode.points().iter().all(|&(_, m)| m == 0.0 || m == 1.0));
        assert!(rt.backlog_units.points().iter().all(|&(_, b)| b >= 0.0));
    }

    #[test]
    fn bursty_workload_runs_through_driver() {
        use ge_workload::BurstModulation;
        let cfg = small_cfg();
        let wc = WorkloadConfig {
            horizon: SimTime::from_secs(20.0),
            burst: Some(BurstModulation::new(0.7, 2.0)),
            ..WorkloadConfig::paper_default(150.0)
        };
        let trace = WorkloadGenerator::new(wc, 33).generate();
        let r = run(&cfg, &trace, &Algorithm::Ge);
        assert_eq!(r.jobs_finished, trace.len() as u64);
        assert!((0.0..=1.0).contains(&r.quality));
    }

    #[test]
    fn empty_trace_runs_cleanly() {
        let cfg = small_cfg();
        let trace = Trace::default();
        let r = run(&cfg, &trace, &Algorithm::Ge);
        assert_eq!(r.jobs_finished, 0);
        assert_eq!(r.energy_j, 0.0);
        assert_eq!(r.quality, 1.0);
    }

    #[test]
    fn segmented_advance_matches_straight_run() {
        // The engine-level equivalence the checkpoint layer relies on:
        // advancing in many small segments is invisible to the handler.
        let cfg = small_cfg();
        let trace = small_trace(140.0, 8);
        let straight = run(&cfg, &trace, &Algorithm::Ge);

        let mut sched = Algorithm::Ge.build(&cfg);
        let mut engine = Engine::new(&cfg, &trace, None, sched.current_mode());
        let horizon = engine.horizon;
        let mut t = SimTime::ZERO;
        while t.before(horizon) {
            t = (t + cfg.quantum).min(horizon);
            engine.advance(t, sched.as_mut(), &mut NullSink);
        }
        let segmented = engine.finalize(sched.as_mut(), &mut NullSink);
        assert_eq!(straight.quality.to_bits(), segmented.quality.to_bits());
        assert_eq!(straight.energy_j.to_bits(), segmented.energy_j.to_bits());
        assert_eq!(straight.schedule_epochs, segmented.schedule_epochs);
        assert_eq!(straight.jobs_finished, segmented.jobs_finished);
    }
}
