//! The scheduling-policy interface and the algorithm catalogue.

use ge_quality::{ExpConcave, QualityLedger};
use ge_server::{CoreJob, Server};
use ge_simcore::SimTime;
use ge_trace::TraceSink;
use ge_workload::Job;

use crate::baselines::queue_policies::{QueuePolicy, QueueScheduler};
use crate::config::{PowerPolicy, SimConfig};
use crate::ge::{GeOptions, GeScheduler};

/// Mode tag for AES (Aggressive Energy Saving) in the mode tracker.
pub const MODE_AES: usize = 0;
/// Mode tag for BQ (Best Quality) in the mode tracker.
pub const MODE_BQ: usize = 1;

/// Which driver events invoke the policy's batch scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerSet {
    /// Run on the periodic quantum tick.
    pub quantum: bool,
    /// Run when the waiting queue reaches the counter threshold.
    pub counter: bool,
    /// Run when a core goes idle (or a job arrives while one is idle).
    pub idle_core: bool,
}

impl TriggerSet {
    /// The GE family: all three triggers (paper §III-E).
    pub fn batch() -> Self {
        TriggerSet {
            quantum: true,
            counter: true,
            idle_core: true,
        }
    }

    /// The single-job queue policies: idle-core only (paper §IV-A-1).
    pub fn idle_only() -> Self {
        TriggerSet {
            quantum: false,
            counter: false,
            idle_core: true,
        }
    }
}

/// Everything a policy sees when a trigger fires.
pub struct ScheduleCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The multicore server (assign jobs, install plans).
    pub server: &'a mut Server,
    /// Arrived-but-unassigned jobs, in arrival order.
    pub queue: &'a mut Vec<Job>,
    /// The online quality monitor (read-only for policies).
    pub ledger: &'a QualityLedger,
    /// The quality function in force.
    pub quality_fn: &'a ExpConcave,
    /// The driver's arrival-rate estimate (requests per second).
    pub load_estimate_rps: f64,
    /// Fraction of the nominal power budget currently available (1.0 =
    /// unthrottled). Policies must plan against `budget × factor`.
    pub budget_factor: f64,
    /// Jobs preempted off failed cores, awaiting re-homing. Policies that
    /// can migrate work drain this; whatever remains at a deadline is
    /// accounted as partially served by the driver.
    pub orphans: &'a mut Vec<CoreJob>,
    /// Jobs the policy rejected this epoch under the `Q_min` admission
    /// floor. The driver discards them and records the shed.
    pub shed: &'a mut Vec<Job>,
    /// Where the policy emits structured decision events.
    pub sink: &'a mut dyn TraceSink,
}

/// A scheduling policy: invoked by the driver at trigger events.
///
/// `Send` is required so an engine + scheduler pair can live behind a
/// mutex shared across serving threads (`ge-serve`); policies are plain
/// data and satisfy it trivially.
pub trait Scheduler: Send {
    /// Human-readable label used in results and tables.
    fn name(&self) -> &str;

    /// Which events invoke [`Scheduler::on_schedule`].
    fn triggers(&self) -> TriggerSet;

    /// One scheduling epoch: drain/assign queued jobs, adjust targets,
    /// distribute power, install per-core plans.
    fn on_schedule(&mut self, ctx: &mut ScheduleCtx<'_>);

    /// The policy's current execution mode ([`MODE_AES`] or [`MODE_BQ`])
    /// for residency tracking. Best-effort policies report BQ.
    fn current_mode(&self) -> usize {
        MODE_BQ
    }

    /// Serializes every piece of state that must survive a checkpoint for
    /// the policy to continue bit-exactly — cross-epoch counters, cursors,
    /// and caches. Per-epoch scratch buffers that are rebuilt from the
    /// `ScheduleCtx` each epoch need not (and should not) be written.
    ///
    /// The default writes nothing, which is correct for stateless policies.
    /// Implementations must be the exact inverse of
    /// [`Scheduler::restore_state`].
    fn encode_state(&self, enc: &mut ge_recover::Encoder) {
        let _ = enc;
    }

    /// Restores the state written by [`Scheduler::encode_state`] onto a
    /// freshly built scheduler of the same algorithm and configuration.
    fn restore_state(
        &mut self,
        dec: &mut ge_recover::Decoder<'_>,
    ) -> Result<(), ge_recover::CodecError> {
        let _ = dec;
        Ok(())
    }
}

/// The catalogue of algorithms evaluated in the paper (§IV-A-1, §IV-F)
/// plus the GE ablations used by Figs. 5–7 and 12.
#[derive(Debug, Clone, PartialEq)]
pub enum Algorithm {
    /// The paper's contribution: AES/BQ with compensation, hybrid ES/WF.
    Ge,
    /// GE without the compensation policy (Fig. 5 ablation).
    GeNoComp,
    /// GE forced to Equal-Sharing (Fig. 6/7 ablation).
    GeEsOnly,
    /// GE forced to Water-Filling (Fig. 6/7 ablation).
    GeWfOnly,
    /// GE with plain (cursor-resetting) Round-Robin assignment instead of
    /// C-RR (assignment ablation).
    GeRr,
    /// Over-Qualified: target `Q_GE + 2%`, no compensation (§IV-A-1).
    Oq,
    /// Best Effort: BQ always, WF always (§IV-A-1).
    Be,
    /// Power-control: BE under a reduced budget (§IV-F). The budget is
    /// calibrated offline to just meet `Q_GE`.
    BeP {
        /// The reduced total power budget (watts).
        budget_w: f64,
    },
    /// Speed-control: BE under a per-core speed cap (§IV-F), calibrated
    /// offline to just meet `Q_GE`.
    BeS {
        /// The per-core maximum speed (GHz).
        speed_cap_ghz: f64,
    },
    /// First-Come First-Served single-job policy.
    Fcfs,
    /// First-Deadline First-Served single-job policy (Fig. 4).
    Fdfs,
    /// Longest-Job-First single-job policy.
    Ljf,
    /// Shortest-Job-First single-job policy.
    Sjf,
}

impl Algorithm {
    /// The label used in result tables (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Ge => "GE",
            Algorithm::GeNoComp => "GE-NoComp",
            Algorithm::GeEsOnly => "GE-ES",
            Algorithm::GeWfOnly => "GE-WF",
            Algorithm::GeRr => "GE-RR",
            Algorithm::Oq => "OQ",
            Algorithm::Be => "BE",
            Algorithm::BeP { .. } => "BE-P",
            Algorithm::BeS { .. } => "BE-S",
            Algorithm::Fcfs => "FCFS",
            Algorithm::Fdfs => "FDFS",
            Algorithm::Ljf => "LJF",
            Algorithm::Sjf => "SJF",
        }
    }

    /// Builds a fresh scheduler instance for one run.
    pub fn build(&self, cfg: &SimConfig) -> Box<dyn Scheduler> {
        match self {
            Algorithm::Ge => Box::new(GeScheduler::new(cfg, GeOptions::paper())),
            Algorithm::GeNoComp => Box::new(GeScheduler::new(
                cfg,
                GeOptions {
                    label: "GE-NoComp",
                    compensation: false,
                    ..GeOptions::paper()
                },
            )),
            Algorithm::GeEsOnly => Box::new(GeScheduler::new(
                cfg,
                GeOptions {
                    label: "GE-ES",
                    power_policy: PowerPolicy::EqualSharingOnly,
                    ..GeOptions::paper()
                },
            )),
            Algorithm::GeWfOnly => Box::new(GeScheduler::new(
                cfg,
                GeOptions {
                    label: "GE-WF",
                    power_policy: PowerPolicy::WaterFillingOnly,
                    ..GeOptions::paper()
                },
            )),
            Algorithm::GeRr => Box::new(GeScheduler::new(
                cfg,
                GeOptions {
                    label: "GE-RR",
                    plain_rr: true,
                    ..GeOptions::paper()
                },
            )),
            Algorithm::Oq => Box::new(GeScheduler::new(
                cfg,
                GeOptions {
                    label: "OQ",
                    target_quality_offset: 0.02,
                    compensation: false,
                    ..GeOptions::paper()
                },
            )),
            Algorithm::Be => Box::new(GeScheduler::new(cfg, GeOptions::best_effort())),
            Algorithm::BeP { budget_w } => Box::new(GeScheduler::new(
                cfg,
                GeOptions {
                    label: "BE-P",
                    budget_override_w: Some(*budget_w),
                    ..GeOptions::best_effort()
                },
            )),
            Algorithm::BeS { speed_cap_ghz } => Box::new(GeScheduler::new(
                cfg,
                GeOptions {
                    label: "BE-S",
                    speed_cap_ghz: Some(*speed_cap_ghz),
                    ..GeOptions::best_effort()
                },
            )),
            Algorithm::Fcfs => Box::new(QueueScheduler::new(cfg, QueuePolicy::Fcfs)),
            Algorithm::Fdfs => Box::new(QueueScheduler::new(cfg, QueuePolicy::Fdfs)),
            Algorithm::Ljf => Box::new(QueueScheduler::new(cfg, QueuePolicy::Ljf)),
            Algorithm::Sjf => Box::new(QueueScheduler::new(cfg, QueuePolicy::Sjf)),
        }
    }

    /// The six algorithms of Fig. 3 (fixed deadline windows).
    pub fn fig3_set() -> Vec<Algorithm> {
        vec![
            Algorithm::Ge,
            Algorithm::Oq,
            Algorithm::Be,
            Algorithm::Fcfs,
            Algorithm::Ljf,
            Algorithm::Sjf,
        ]
    }

    /// Every algorithm the differential-testing oracle fans out over: GE,
    /// its forced-mode ablations, and all queue baselines. BE-P/BE-S are
    /// excluded because their knobs are sweep-calibrated per workload, not
    /// meaningful on arbitrary tiny instances.
    pub fn differential_set() -> Vec<Algorithm> {
        vec![
            Algorithm::Ge,
            Algorithm::GeNoComp,
            Algorithm::GeEsOnly,
            Algorithm::GeWfOnly,
            Algorithm::GeRr,
            Algorithm::Oq,
            Algorithm::Be,
            Algorithm::Fcfs,
            Algorithm::Fdfs,
            Algorithm::Ljf,
            Algorithm::Sjf,
        ]
    }

    /// The seven algorithms of Fig. 4 (random deadline windows).
    pub fn fig4_set() -> Vec<Algorithm> {
        vec![
            Algorithm::Ge,
            Algorithm::Oq,
            Algorithm::Be,
            Algorithm::Fcfs,
            Algorithm::Fdfs,
            Algorithm::Ljf,
            Algorithm::Sjf,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Algorithm::Ge.label(), "GE");
        assert_eq!(Algorithm::BeP { budget_w: 100.0 }.label(), "BE-P");
        assert_eq!(Algorithm::Sjf.label(), "SJF");
    }

    #[test]
    fn builds_every_algorithm() {
        let cfg = SimConfig::paper_default();
        for alg in [
            Algorithm::Ge,
            Algorithm::GeNoComp,
            Algorithm::GeEsOnly,
            Algorithm::GeWfOnly,
            Algorithm::GeRr,
            Algorithm::Oq,
            Algorithm::Be,
            Algorithm::BeP { budget_w: 200.0 },
            Algorithm::BeS { speed_cap_ghz: 1.8 },
            Algorithm::Fcfs,
            Algorithm::Fdfs,
            Algorithm::Ljf,
            Algorithm::Sjf,
        ] {
            let s = alg.build(&cfg);
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn figure_sets() {
        assert_eq!(Algorithm::fig3_set().len(), 6);
        assert_eq!(Algorithm::fig4_set().len(), 7);
        assert!(Algorithm::fig4_set().contains(&Algorithm::Fdfs));
        assert!(!Algorithm::fig3_set().contains(&Algorithm::Fdfs));
    }

    #[test]
    fn differential_set_has_no_calibrated_variants() {
        let set = Algorithm::differential_set();
        assert_eq!(set.len(), 11);
        assert!(set
            .iter()
            .all(|a| !matches!(a, Algorithm::BeP { .. } | Algorithm::BeS { .. })));
        // Every member must build against the paper config.
        let cfg = SimConfig::paper_default();
        for alg in &set {
            let _ = alg.build(&cfg);
        }
    }

    #[test]
    fn trigger_sets() {
        let b = TriggerSet::batch();
        assert!(b.quantum && b.counter && b.idle_core);
        let i = TriggerSet::idle_only();
        assert!(!i.quantum && !i.counter && i.idle_core);
    }

    #[test]
    fn ge_uses_batch_triggers_queue_policies_idle_only() {
        let cfg = SimConfig::paper_default();
        assert_eq!(Algorithm::Ge.build(&cfg).triggers(), TriggerSet::batch());
        assert_eq!(
            Algorithm::Fcfs.build(&cfg).triggers(),
            TriggerSet::idle_only()
        );
    }
}
