//! The GE (Good Enough) scheduling algorithm — paper §III.
//!
//! One scheduler epoch (triggered by quantum / counter / idle-core events)
//! performs, in order:
//!
//! 1. **C-RR assignment** (§III-E): queued jobs are distributed to cores
//!    cumulative-round-robin; a job never migrates afterwards.
//! 2. **Mode decision + compensation** (§III-C): if the monitored quality
//!    has fallen below `Q_GE`, switch to BQ (no cutting, run everything to
//!    completion); once it recovers, switch back to AES.
//! 3. **LF job cutting** (§III-B, AES mode only): per core, cut job tails
//!    longest-first until the batch quality equals the target. A running
//!    job re-enters the cut with its *original* demand; its new target is
//!    never below what it has already processed and never above `p_j`.
//! 4. **Hybrid power distribution** (§III-D): Equal-Sharing below the
//!    critical load, Water-Filling above it. Core power demands are the
//!    power at each core's Energy-OPT peak speed.
//! 5. **Quality-OPT second cut** (§III-E): if a core's power cap cannot
//!    execute its batch, targets are reduced by prefix-constrained
//!    level-filling — the volume-budgeted quality maximizer.
//! 6. **Energy-OPT execution** (§III-E): each core's final plan is the
//!    YDS minimum-energy speed profile; the core engine runs it in EDF
//!    order. With discrete DVFS enabled, per-core speeds are rectified to
//!    the ladder (§IV-A-5) lowest-power-core first.
//!
//! The same struct also implements the best-effort family: `BE` is GE with
//! cutting disabled and WF forced; `OQ` raises the target by 2 % and
//! disables compensation; `BE-P`/`BE-S` are BE under a reduced budget /
//! per-core speed cap.

use ge_power::{
    distribute_equal_sharing, distribute_water_filling, yds_schedule, PolynomialPower, PowerModel,
    SpeedProfile, SpeedSegment, YdsJob,
};
use ge_quality::{lf_cut, prefix_level_fill, QualityFunction};
use ge_server::CrrAssigner;
use ge_simcore::SimTime;
use ge_trace::{SplitPolicy, TraceEvent};

use crate::config::{PowerPolicy, SimConfig};
use crate::policy::{ScheduleCtx, Scheduler, TriggerSet, MODE_AES, MODE_BQ};

/// Behavioural knobs selecting which member of the GE/BE family this
/// scheduler instance is.
#[derive(Debug, Clone)]
pub struct GeOptions {
    /// Label reported in results.
    pub label: &'static str,
    /// Apply the LF cutting policy (AES mode). `false` = best effort.
    pub cutting: bool,
    /// Enable the BQ compensation policy.
    pub compensation: bool,
    /// Added to `Q_GE` when computing the cut target (OQ uses +0.02).
    pub target_quality_offset: f64,
    /// Power-distribution selection.
    pub power_policy: PowerPolicy,
    /// Reduced total budget (BE-P); `None` = the configured budget.
    pub budget_override_w: Option<f64>,
    /// Per-core speed cap in GHz (BE-S); `None` = uncapped.
    pub speed_cap_ghz: Option<f64>,
    /// Use plain Round-Robin (cursor reset each batch) instead of C-RR —
    /// the §III-E alternative, kept for the assignment ablation.
    pub plain_rr: bool,
}

impl GeOptions {
    /// The paper's GE algorithm.
    pub fn paper() -> Self {
        GeOptions {
            label: "GE",
            cutting: true,
            compensation: true,
            target_quality_offset: 0.0,
            power_policy: PowerPolicy::Hybrid,
            budget_override_w: None,
            speed_cap_ghz: None,
            plain_rr: false,
        }
    }

    /// The BE (Best Effort) baseline: BQ always, WF always (§IV-A-1).
    pub fn best_effort() -> Self {
        GeOptions {
            label: "BE",
            cutting: false,
            compensation: false,
            target_quality_offset: 0.0,
            power_policy: PowerPolicy::WaterFillingOnly,
            budget_override_w: None,
            speed_cap_ghz: None,
            plain_rr: false,
        }
    }
}

/// The GE scheduler (and, via [`GeOptions`], the whole BE family).
pub struct GeScheduler {
    opts: GeOptions,
    q_ge: f64,
    q_min: f64,
    critical_load_rps: f64,
    budget_w: f64,
    power_beta: f64,
    cores: usize,
    units_per_ghz_sec: f64,
    model: PolynomialPower,
    discrete: Option<ge_power::DiscreteSpeedSet>,
    crr: CrrAssigner,
    mode: usize,
    epochs: u64,
}

impl GeScheduler {
    /// Creates a scheduler for the given platform configuration.
    pub fn new(cfg: &SimConfig, opts: GeOptions) -> Self {
        cfg.validate();
        let budget = opts.budget_override_w.unwrap_or(cfg.budget_w);
        assert!(budget > 0.0, "budget override must be positive");
        GeScheduler {
            q_ge: cfg.q_ge,
            q_min: cfg.q_min,
            critical_load_rps: cfg.critical_load_rps,
            budget_w: budget,
            power_beta: cfg.power_beta,
            cores: cfg.cores,
            units_per_ghz_sec: cfg.units_per_ghz_sec,
            model: PolynomialPower::new(cfg.power_a, cfg.power_beta),
            discrete: cfg.discrete_speeds.clone(),
            crr: CrrAssigner::new(cfg.cores),
            mode: if opts.cutting { MODE_AES } else { MODE_BQ },
            epochs: 0,
            opts,
        }
    }

    /// Number of epochs this scheduler has run.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The effective cut target (`Q_GE` plus any OQ offset, clamped to 1).
    fn cut_target(&self) -> f64 {
        (self.q_ge + self.opts.target_quality_offset).min(1.0)
    }

    /// The cut target under a throttled budget. Power scales as `s^β`, so
    /// the volume a budget `φ·H` can retire scales roughly as `φ^(1/β)`;
    /// the cut aims there instead of chasing the unattainable nominal
    /// target, but never drops below the `Q_min` floor.
    fn effective_cut_target(&self, budget_factor: f64) -> f64 {
        let base = self.cut_target();
        if budget_factor >= 1.0 {
            return base;
        }
        (base * budget_factor.powf(1.0 / self.power_beta)).max(self.q_min.min(base))
    }

    /// Step 2: the AES/BQ mode decision.
    ///
    /// Under a throttled budget the compensation policy is overridden:
    /// entering BQ would spend *more* energy chasing quality the shrunken
    /// budget cannot deliver, so the scheduler stays in AES and cuts
    /// deeper (see [`Self::effective_cut_target`]).
    fn decide_mode(&mut self, monitored_quality: f64, budget_factor: f64) {
        if !self.opts.cutting {
            self.mode = MODE_BQ;
            return;
        }
        if budget_factor < 1.0 - 1e-12 {
            self.mode = MODE_AES;
            return;
        }
        if !self.opts.compensation {
            self.mode = MODE_AES;
            return;
        }
        self.mode = if monitored_quality < self.q_ge {
            MODE_BQ
        } else {
            MODE_AES
        };
    }

    /// `Q_min` admission control: when the projected batch quality under
    /// the currently degraded capacity falls below the floor, the most
    /// recently arrived jobs are rejected outright (pushed into
    /// `ctx.shed`) so the remaining batch can still be served at or above
    /// `Q_min`, instead of every job starving a little.
    ///
    /// The projection is a deliberately coarse mean-field bound: assume
    /// the whole effective budget is split equally (`s_ES`), spread the
    /// capacity of the surviving cores over the batch, and score the mean
    /// job against its mean estimate.
    fn shed_below_floor(
        &self,
        ctx: &mut ScheduleCtx<'_>,
        batch: &mut Vec<ge_workload::Job>,
        m_online: usize,
        h_eff: f64,
    ) {
        if self.q_min <= 0.0 || batch.is_empty() {
            return;
        }
        let f = ctx.quality_fn;
        let s_es = self.model.speed_for_power(h_eff / m_online as f64);
        loop {
            let n = batch.len();
            if n == 0 {
                break;
            }
            let mean_window: f64 = batch
                .iter()
                .map(|j| j.deadline.saturating_since(ctx.now).as_secs())
                .sum::<f64>()
                / n as f64;
            let mean_est: f64 = batch.iter().map(|j| j.estimate).sum::<f64>() / n as f64;
            if mean_est <= 0.0 {
                break;
            }
            let per_job = m_online as f64 * s_es * self.units_per_ghz_sec * mean_window / n as f64;
            let projected = f.value(per_job.min(mean_est)) / f.value(mean_est);
            if projected >= self.q_min {
                break;
            }
            let job = batch.pop().expect("non-empty batch");
            if ctx.sink.is_enabled() {
                ctx.sink.record(&TraceEvent::JobShed {
                    t: ctx.now.as_secs(),
                    job: job.id.index() as u64,
                    estimate: job.estimate,
                    full_demand: job.demand,
                    projected_quality: projected,
                });
            }
            ctx.shed.push(job);
        }
    }

    /// Steps 3–6 for one core: set targets, plan speeds. Returns the
    /// core's power demand (watts at its planned peak speed) and the
    /// uncapped plan, which [`Self::finalize_core`] later trims to the
    /// granted cap.
    fn plan_core_uncapped(
        &self,
        ctx: &mut ScheduleCtx<'_>,
        core_idx: usize,
        cut_target: f64,
    ) -> (f64, SpeedProfile) {
        let now = ctx.now;
        let f = ctx.quality_fn;
        let core = ctx.server.core_mut(core_idx);

        // -- Targets (LF cut in AES, full believed demand in BQ) ---------
        // All planning runs on the scheduler's demand *estimates*; the
        // execution engine and the ledger use the true demand, so
        // misestimation shows up as wasted energy (overestimate) or lost
        // quality (underestimate) — never as clairvoyance.
        if self.mode == MODE_AES && self.opts.cutting {
            let believed: Vec<f64> = core.jobs().iter().map(|j| j.estimate).collect();
            if !believed.is_empty() {
                let cut = lf_cut(f, &believed, cut_target);
                for (job, &c) in core.jobs_mut().iter_mut().zip(&cut.cut_demands) {
                    // Never below already-processed volume, never above
                    // the believed demand.
                    job.target_demand = c.max(job.processed).min(job.estimate);
                }
                if ctx.sink.is_enabled() {
                    let volume_before: f64 = believed.iter().sum();
                    let volume_after: f64 = core.jobs().iter().map(|j| j.target_demand).sum();
                    ctx.sink.record(&TraceEvent::LfCut {
                        t: now.as_secs(),
                        level: cut.level,
                        target_quality: cut_target,
                        jobs: believed.len() as u64,
                        volume_before,
                        volume_after,
                    });
                    for job in core.jobs() {
                        if job.target_demand < job.estimate - 1e-12 {
                            ctx.sink.record(&TraceEvent::JobCut {
                                t: now.as_secs(),
                                job: job.id.index() as u64,
                                full_demand: job.estimate,
                                cut_demand: job.target_demand,
                            });
                        }
                    }
                }
            }
        } else {
            for job in core.jobs_mut() {
                job.target_demand = job.estimate.max(job.processed);
            }
        }

        // -- Energy-OPT plan over remaining work -------------------------
        let yds_jobs: Vec<YdsJob> = core
            .jobs()
            .iter()
            .filter(|j| j.remaining() > 1e-9 && j.deadline.after(now))
            .enumerate()
            .map(|(i, j)| {
                YdsJob::new(
                    i,
                    now.as_secs(),
                    j.deadline.as_secs(),
                    j.remaining() / self.units_per_ghz_sec,
                )
            })
            .collect();
        let plan = yds_schedule(&yds_jobs);
        let demand_w = self.model.power(plan.peak_speed);
        (demand_w, plan.profile)
    }

    /// Applies the granted power cap to a core: second (Quality-OPT) cut
    /// if needed, re-plan, and install.
    fn finalize_core(&self, ctx: &mut ScheduleCtx<'_>, core_idx: usize, cap_w: f64) {
        let now = ctx.now;
        let mut s_cap = self.model.speed_for_power(cap_w);
        if let Some(cap) = self.opts.speed_cap_ghz {
            s_cap = s_cap.min(cap);
        }
        if ctx.sink.is_enabled() {
            ctx.sink.record(&TraceEvent::CoreCap {
                t: now.as_secs(),
                core: core_idx as u64,
                cap_w,
                speed_cap_ghz: s_cap,
            });
        }
        let core = ctx.server.core_mut(core_idx);

        // Indices of plannable jobs in deadline (EDF) order.
        let mut order: Vec<usize> = (0..core.jobs().len())
            .filter(|&i| {
                let j = &core.jobs()[i];
                j.remaining() > 1e-9 && j.deadline.after(now)
            })
            .collect();
        order.sort_by(|&a, &b| {
            let ja = &core.jobs()[a];
            let jb = &core.jobs()[b];
            ja.deadline.total_cmp(&jb.deadline).then(ja.id.cmp(&jb.id))
        });
        if order.is_empty() {
            core.install_plan(SpeedProfile::empty(), cap_w);
            return;
        }

        // Can the cap execute the batch? Peak feasible speed check.
        let needs_cut = {
            let mut cum_work = 0.0;
            let mut peak = 0.0f64;
            for &i in &order {
                let j = &core.jobs()[i];
                cum_work += j.remaining() / self.units_per_ghz_sec;
                let window = j.deadline.saturating_since(now).as_secs().max(1e-9);
                peak = peak.max(cum_work / window);
            }
            peak > s_cap + 1e-9
        };

        if needs_cut {
            // Quality-OPT second cut: prefix-constrained level fill on the
            // volume achievable by each deadline at the capped speed.
            let demands: Vec<f64> = order.iter().map(|&i| core.jobs()[i].remaining()).collect();
            let budgets: Vec<f64> = order
                .iter()
                .map(|&i| {
                    let j = &core.jobs()[i];
                    s_cap * j.deadline.saturating_since(now).as_secs() * self.units_per_ghz_sec
                })
                .collect();
            let alloc = prefix_level_fill(&demands, &budgets);
            for (&i, &a) in order.iter().zip(&alloc) {
                let j = &mut core.jobs_mut()[i];
                j.target_demand = (j.processed + a).min(j.estimate.max(j.processed));
            }
            if ctx.sink.is_enabled() {
                ctx.sink.record(&TraceEvent::SecondCut {
                    t: now.as_secs(),
                    core: core_idx as u64,
                    volume_before: demands.iter().sum(),
                    volume_after: alloc.iter().sum(),
                });
            }
        }

        // Final Energy-OPT plan over the (possibly twice-cut) targets.
        let yds_jobs: Vec<YdsJob> = order
            .iter()
            .enumerate()
            .filter(|(_, &i)| core.jobs()[i].remaining() > 1e-9)
            .map(|(k, &i)| {
                let j = &core.jobs()[i];
                YdsJob::new(
                    k,
                    now.as_secs(),
                    j.deadline.as_secs(),
                    j.remaining() / self.units_per_ghz_sec,
                )
            })
            .collect();
        let plan = yds_schedule(&yds_jobs);

        // Clamp at the cap (numerical safety; the cut guarantees
        // feasibility up to rounding).
        let segments: Vec<SpeedSegment> = plan
            .profile
            .segments()
            .iter()
            .map(|s| SpeedSegment::new(s.start, s.end, s.speed_ghz.min(s_cap)))
            .collect();
        if ctx.sink.is_enabled() {
            for s in &segments {
                ctx.sink.record(&TraceEvent::SpeedSegment {
                    t: now.as_secs(),
                    core: core_idx as u64,
                    start_s: s.start.as_secs(),
                    end_s: s.end.as_secs(),
                    speed_ghz: s.speed_ghz,
                });
            }
        }
        core.install_plan(SpeedProfile::new(segments), cap_w);
    }

    /// Rebuilds every online core's plan as a single constant rectified
    /// speed (discrete-DVFS mode, §IV-A-5).
    fn apply_discrete(&self, ctx: &mut ScheduleCtx<'_>, caps: &[f64], online: &[bool], h_eff: f64) {
        let Some(ladder) = &self.discrete else {
            return;
        };
        let now = ctx.now;
        let online_idx: Vec<usize> = (0..self.cores).filter(|&i| online[i]).collect();
        // Chosen continuous speed per core = peak of its installed plan.
        let chosen: Vec<f64> = online_idx
            .iter()
            .map(|&i| ctx.server.core(i).profile().max_speed())
            .collect();
        let rectified = ladder.rectify(&chosen, &self.model, h_eff);
        for (k, &i) in online_idx.iter().enumerate() {
            let speed = rectified[k];
            let core = ctx.server.core_mut(i);
            let last_deadline = core
                .jobs()
                .iter()
                .filter(|j| j.remaining() > 1e-9)
                .map(|j| j.deadline)
                .fold(now, SimTime::max);
            let profile = if speed > 0.0 && last_deadline.after(now) {
                if ctx.sink.is_enabled() {
                    ctx.sink.record(&TraceEvent::SpeedSegment {
                        t: now.as_secs(),
                        core: i as u64,
                        start_s: now.as_secs(),
                        end_s: last_deadline.as_secs(),
                        speed_ghz: speed,
                    });
                }
                SpeedProfile::constant(now, last_deadline, speed)
            } else {
                SpeedProfile::empty()
            };
            core.install_plan(profile, caps[i]);
        }
    }
}

impl Scheduler for GeScheduler {
    fn name(&self) -> &str {
        self.opts.label
    }

    fn triggers(&self) -> TriggerSet {
        TriggerSet::batch()
    }

    fn current_mode(&self) -> usize {
        self.mode
    }

    fn on_schedule(&mut self, ctx: &mut ScheduleCtx<'_>) {
        self.epochs += 1;
        let h_eff = self.budget_w * ctx.budget_factor;
        let online: Vec<bool> = (0..self.cores)
            .map(|i| ctx.server.core(i).is_online())
            .collect();
        let m_online = online.iter().filter(|&&up| up).count();

        // 2. Mode decision (compensation policy; throttling forces AES).
        let monitored = ctx.ledger.quality();
        let prev_mode = self.mode;
        self.decide_mode(monitored, ctx.budget_factor);
        if self.mode != prev_mode && ctx.sink.is_enabled() {
            ctx.sink.record(&TraceEvent::ModeSwitch {
                t: ctx.now.as_secs(),
                from_mode: prev_mode as u64,
                to_mode: self.mode as u64,
                ledger_quality: monitored,
            });
        }

        // Every core down: nothing can be assigned or planned. Queued
        // jobs wait (or expire) until a recovery re-triggers us.
        if m_online == 0 {
            return;
        }

        // 0. Replan on core loss: re-home jobs preempted off failed
        //    cores. They keep their accumulated progress and re-enter
        //    C-RR over the surviving cores.
        for job in ctx.orphans.drain(..) {
            let core_idx = self.crr.assign_one_online(&online);
            if ctx.sink.is_enabled() {
                ctx.sink.record(&TraceEvent::JobAssigned {
                    t: ctx.now.as_secs(),
                    job: job.id.index() as u64,
                    core: core_idx as u64,
                });
            }
            ctx.server.core_mut(core_idx).adopt(job);
        }

        // 1. C-RR batch assignment (or plain RR in the ablation), gated
        //    by the Q_min admission floor under degraded capacity.
        if self.opts.plain_rr {
            self.crr.reset();
        }
        let mut batch: Vec<_> = ctx.queue.drain(..).collect();
        self.shed_below_floor(ctx, &mut batch, m_online, h_eff);
        let targets = self.crr.assign_batch_online(batch.len(), &online);
        for (job, &core_idx) in batch.iter().zip(&targets) {
            ctx.server.core_mut(core_idx).assign(job);
            if ctx.sink.is_enabled() {
                ctx.sink.record(&TraceEvent::JobAssigned {
                    t: ctx.now.as_secs(),
                    job: job.id.index() as u64,
                    core: core_idx as u64,
                });
            }
        }

        // 3–5. Per-core targets and uncapped Energy-OPT plans (online
        // cores only; failed cores hold no work and get no power).
        let cut_target = self.effective_cut_target(ctx.budget_factor);
        let mut demands = Vec::with_capacity(m_online);
        let mut online_idx = Vec::with_capacity(m_online);
        for (i, up) in online.iter().enumerate() {
            if !up {
                continue;
            }
            let (demand_w, _plan) = self.plan_core_uncapped(ctx, i, cut_target);
            demands.push(demand_w);
            online_idx.push(i);
        }

        // 4. Hybrid power distribution over the *effective* budget.
        let use_wf = match self.opts.power_policy {
            PowerPolicy::Hybrid => ctx.load_estimate_rps >= self.critical_load_rps,
            PowerPolicy::EqualSharingOnly => false,
            PowerPolicy::WaterFillingOnly => true,
        };
        if ctx.sink.is_enabled() {
            ctx.sink.record(&TraceEvent::PowerSplit {
                t: ctx.now.as_secs(),
                policy: if use_wf {
                    SplitPolicy::WaterFilling
                } else {
                    SplitPolicy::EqualShare
                },
                load_estimate_rps: ctx.load_estimate_rps,
                budget_w: h_eff,
            });
        }
        let caps_online = if use_wf {
            distribute_water_filling(&demands, h_eff)
        } else {
            distribute_equal_sharing(m_online, h_eff)
        };

        // 5–6. Cap-aware finalization per online core.
        let mut caps = vec![0.0; self.cores];
        for (k, &i) in online_idx.iter().enumerate() {
            caps[i] = caps_online[k];
            self.finalize_core(ctx, i, caps_online[k]);
        }

        // Discrete-DVFS rectification (optional).
        self.apply_discrete(ctx, &caps, &online, h_eff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ge_quality::{ExpConcave, QualityLedger};
    use ge_server::Server;
    use ge_simcore::SimTime;
    use ge_workload::{Job, JobId};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn cfg() -> SimConfig {
        SimConfig {
            cores: 2,
            budget_w: 40.0, // 20 W / core = 2 GHz equal share
            ..SimConfig::paper_default()
        }
    }

    fn make_server(c: &SimConfig) -> Server {
        Server::new(
            c.cores,
            Box::new(PolynomialPower::new(c.power_a, c.power_beta)),
            c.budget_w,
            c.units_per_ghz_sec,
        )
    }

    fn ctx_parts(c: &SimConfig) -> (Server, Vec<Job>, QualityLedger, ExpConcave) {
        (
            make_server(c),
            Vec::new(),
            QualityLedger::cumulative(),
            ExpConcave::new(c.quality_c, c.quality_xmax),
        )
    }

    fn job(id: u64, release: f64, deadline: f64, demand: f64) -> Job {
        Job::new(JobId(id), t(release), t(deadline), demand)
    }

    #[test]
    fn assigns_queue_via_crr() {
        let c = cfg();
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        queue.push(job(0, 0.0, 0.15, 200.0));
        queue.push(job(1, 0.0, 0.15, 200.0));
        queue.push(job(2, 0.0, 0.15, 200.0));
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 10.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        ge.on_schedule(&mut ctx);
        assert!(queue.is_empty());
        assert_eq!(server.core(0).jobs().len(), 2); // C-RR: 0,1,0
        assert_eq!(server.core(1).jobs().len(), 1);
    }

    #[test]
    fn aes_mode_cuts_targets() {
        let c = cfg();
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        queue.push(job(0, 0.0, 0.15, 900.0));
        queue.push(job(1, 0.0, 0.15, 800.0));
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 10.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        ge.on_schedule(&mut ctx);
        assert_eq!(ge.current_mode(), MODE_AES);
        // Each core got one long job; AES must have cut it below full.
        for i in 0..2 {
            for j in server.core(i).jobs() {
                assert!(
                    j.target_demand < j.full_demand - 1e-6,
                    "job {} not cut: target {} vs full {}",
                    j.id,
                    j.target_demand,
                    j.full_demand
                );
            }
        }
    }

    #[test]
    fn be_never_cuts() {
        let c = cfg();
        let mut be = GeScheduler::new(&c, GeOptions::best_effort());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        // 900 units in 450 ms needs 2 GHz — within the core's power reach,
        // so no Quality-OPT second cut can bind.
        queue.push(job(0, 0.0, 0.45, 900.0));
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 500.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        be.on_schedule(&mut ctx);
        assert_eq!(be.current_mode(), MODE_BQ);
        let j = &server.core(0).jobs()[0];
        assert!((j.target_demand - j.full_demand).abs() < 1e-9);
    }

    #[test]
    fn compensation_switches_to_bq_and_back() {
        let c = cfg();
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, mut ledger, f) = ctx_parts(&c);
        // Degrade monitored quality below Q_GE = 0.9.
        ledger.record(0.5, 1.0);
        {
            let mut ctx = ScheduleCtx {
                now: t(0.0),
                server: &mut server,
                queue: &mut queue,
                ledger: &ledger,
                quality_fn: &f,
                load_estimate_rps: 10.0,
                budget_factor: 1.0,
                orphans: &mut Vec::new(),
                shed: &mut Vec::new(),
                sink: &mut ge_trace::NullSink,
            };
            ge.on_schedule(&mut ctx);
        }
        assert_eq!(ge.current_mode(), MODE_BQ, "quality 0.5 must force BQ");
        // Recover the quality; next epoch returns to AES.
        for _ in 0..100 {
            ledger.record(1.0, 1.0);
        }
        {
            let mut ctx = ScheduleCtx {
                now: t(0.5),
                server: &mut server,
                queue: &mut queue,
                ledger: &ledger,
                quality_fn: &f,
                load_estimate_rps: 10.0,
                budget_factor: 1.0,
                orphans: &mut Vec::new(),
                shed: &mut Vec::new(),
                sink: &mut ge_trace::NullSink,
            };
            ge.on_schedule(&mut ctx);
        }
        assert_eq!(ge.current_mode(), MODE_AES);
    }

    #[test]
    fn no_comp_stays_in_aes() {
        let c = cfg();
        let mut ge = GeScheduler::new(
            &c,
            GeOptions {
                compensation: false,
                ..GeOptions::paper()
            },
        );
        let (mut server, mut queue, mut ledger, f) = ctx_parts(&c);
        ledger.record(0.1, 1.0); // terrible quality
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 10.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        ge.on_schedule(&mut ctx);
        assert_eq!(ge.current_mode(), MODE_AES);
    }

    #[test]
    fn hybrid_uses_es_below_critical_wf_above() {
        let c = cfg();
        // Asymmetric load: core 0 heavy, core 1 empty.
        let heavy = job(0, 0.0, 0.15, 900.0);

        // Light load ⇒ ES ⇒ both cores capped at H/m = 20 W.
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        queue.push(heavy);
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 10.0, // « critical 154
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        ge.on_schedule(&mut ctx);
        assert!((server.core(0).power_cap() - 20.0).abs() < 1e-9);
        assert!((server.core(1).power_cap() - 20.0).abs() < 1e-9);

        // Heavy load ⇒ WF ⇒ the loaded core gets (almost) everything it
        // demands; the idle core keeps only surplus headroom.
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        queue.push(job(0, 0.0, 0.15, 900.0));
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 500.0, // » critical
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        ge.on_schedule(&mut ctx);
        assert!(
            server.core(0).power_cap() > 20.0,
            "WF should feed the loaded core, cap = {}",
            server.core(0).power_cap()
        );
    }

    #[test]
    fn insufficient_cap_triggers_second_cut() {
        let c = cfg();
        // BE (no LF cut) with a brutal speed cap: targets must be reduced
        // by Quality-OPT to what the cap can retire.
        let mut be = GeScheduler::new(
            &c,
            GeOptions {
                speed_cap_ghz: Some(1.0),
                ..GeOptions::best_effort()
            },
        );
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        // 450 units in 150 ms needs 3 GHz; the cap allows 1 GHz × 0.15 s
        // = 150 units.
        queue.push(job(0, 0.0, 0.15, 450.0));
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 500.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        be.on_schedule(&mut ctx);
        let j = &server.core(0).jobs()[0];
        assert!(
            (j.target_demand - 150.0).abs() < 1e-6,
            "expected 150, got {}",
            j.target_demand
        );
        // Installed plan never exceeds the cap.
        assert!(server.core(0).profile().max_speed() <= 1.0 + 1e-9);
    }

    #[test]
    fn oq_cuts_to_higher_target_than_ge() {
        let c = cfg();
        let run = |opts: GeOptions| {
            let mut s = GeScheduler::new(&c, opts);
            let (mut server, mut queue, ledger, f) = ctx_parts(&c);
            // Wide window so the LF cut, not the power cap, sets targets.
            queue.push(job(0, 0.0, 0.45, 900.0));
            let mut ctx = ScheduleCtx {
                now: t(0.0),
                server: &mut server,
                queue: &mut queue,
                ledger: &ledger,
                quality_fn: &f,
                load_estimate_rps: 10.0,
                budget_factor: 1.0,
                orphans: &mut Vec::new(),
                shed: &mut Vec::new(),
                sink: &mut ge_trace::NullSink,
            };
            s.on_schedule(&mut ctx);
            server.core(0).jobs()[0].target_demand
        };
        let ge_target = run(GeOptions::paper());
        let oq_target = run(GeOptions {
            label: "OQ",
            target_quality_offset: 0.02,
            compensation: false,
            ..GeOptions::paper()
        });
        assert!(
            oq_target > ge_target,
            "OQ ({oq_target}) must retain more work than GE ({ge_target})"
        );
    }

    #[test]
    fn discrete_mode_installs_ladder_speeds() {
        let mut c = cfg();
        c.discrete_speeds = Some(ge_power::DiscreteSpeedSet::paper_default());
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        queue.push(job(0, 0.0, 0.15, 290.0));
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 10.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        ge.on_schedule(&mut ctx);
        let speed = server.core(0).profile().max_speed();
        assert!(
            (speed / 0.5 - (speed / 0.5).round()).abs() < 1e-9,
            "speed {speed} is not on the 0.5 GHz ladder"
        );
    }

    #[test]
    fn targets_never_below_processed() {
        let c = cfg();
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        // Pre-plant a job that already processed 600 of 900 units.
        server.core_mut(0).assign(&job(0, 0.0, 0.15, 900.0));
        server.core_mut(0).jobs_mut()[0].processed = 600.0;
        let mut ctx = ScheduleCtx {
            now: t(0.01),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 10.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        ge.on_schedule(&mut ctx);
        let j = &server.core(0).jobs()[0];
        assert!(j.target_demand >= 600.0 - 1e-9);
        assert!(j.target_demand <= 900.0 + 1e-9);
    }

    #[test]
    fn epoch_counter_advances() {
        let c = cfg();
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        for e in 0..3 {
            let mut ctx = ScheduleCtx {
                now: t(e as f64 * 0.5),
                server: &mut server,
                queue: &mut queue,
                ledger: &ledger,
                quality_fn: &f,
                load_estimate_rps: 10.0,
                budget_factor: 1.0,
                orphans: &mut Vec::new(),
                shed: &mut Vec::new(),
                sink: &mut ge_trace::NullSink,
            };
            ge.on_schedule(&mut ctx);
        }
        assert_eq!(ge.epochs(), 3);
    }
}
