//! The GE (Good Enough) scheduling algorithm — paper §III.
//!
//! One scheduler epoch (triggered by quantum / counter / idle-core events)
//! performs, in order:
//!
//! 1. **C-RR assignment** (§III-E): queued jobs are distributed to cores
//!    cumulative-round-robin; a job never migrates afterwards.
//! 2. **Mode decision + compensation** (§III-C): if the monitored quality
//!    has fallen below `Q_GE`, switch to BQ (no cutting, run everything to
//!    completion); once it recovers, switch back to AES.
//! 3. **LF job cutting** (§III-B, AES mode only): per core, cut job tails
//!    longest-first until the batch quality equals the target. A running
//!    job re-enters the cut with its *original* demand; its new target is
//!    never below what it has already processed and never above `p_j`.
//! 4. **Hybrid power distribution** (§III-D): Equal-Sharing below the
//!    critical load, Water-Filling above it. Core power demands are the
//!    power at each core's Energy-OPT peak speed.
//! 5. **Quality-OPT second cut** (§III-E): if a core's power cap cannot
//!    execute its batch, targets are reduced by prefix-constrained
//!    level-filling — the volume-budgeted quality maximizer.
//! 6. **Energy-OPT execution** (§III-E): each core's final plan is the
//!    YDS minimum-energy speed profile; the core engine runs it in EDF
//!    order. With discrete DVFS enabled, per-core speeds are rectified to
//!    the ladder (§IV-A-5) lowest-power-core first.
//!
//! The same struct also implements the best-effort family: `BE` is GE with
//! cutting disabled and WF forced; `OQ` raises the target by 2 % and
//! disables compensation; `BE-P`/`BE-S` are BE under a reduced budget /
//! per-core speed cap.

use ge_power::yds_schedule_with;
use ge_power::{
    distribute_equal_sharing, distribute_water_filling, PolynomialPower, PowerModel, SpeedProfile,
    SpeedSegment, YdsJob, YdsScratch,
};
use ge_quality::{lf_cut_with, prefix_level_fill, CutOutcome, CutScratch, QualityFunction};
use ge_server::{CoreJob, CrrAssigner};
use ge_simcore::SimTime;
use ge_telemetry::{Gauge, SpanGuard, Telemetry};
use ge_trace::{SplitPolicy, TraceEvent};

use crate::config::{PowerPolicy, SimConfig};
use crate::policy::{ScheduleCtx, Scheduler, TriggerSet, MODE_AES, MODE_BQ};

/// Behavioural knobs selecting which member of the GE/BE family this
/// scheduler instance is.
#[derive(Debug, Clone)]
pub struct GeOptions {
    /// Label reported in results.
    pub label: &'static str,
    /// Apply the LF cutting policy (AES mode). `false` = best effort.
    pub cutting: bool,
    /// Enable the BQ compensation policy.
    pub compensation: bool,
    /// Added to `Q_GE` when computing the cut target (OQ uses +0.02).
    pub target_quality_offset: f64,
    /// Power-distribution selection.
    pub power_policy: PowerPolicy,
    /// Reduced total budget (BE-P); `None` = the configured budget.
    pub budget_override_w: Option<f64>,
    /// Per-core speed cap in GHz (BE-S); `None` = uncapped.
    pub speed_cap_ghz: Option<f64>,
    /// Use plain Round-Robin (cursor reset each batch) instead of C-RR —
    /// the §III-E alternative, kept for the assignment ablation.
    pub plain_rr: bool,
    /// Disable incremental replanning: every epoch replans every online
    /// core from scratch. This is the reference mode the equivalence
    /// test and the end-to-end benchmark compare the dirty-bit path
    /// against; production configurations leave it off.
    pub force_full_replan: bool,
}

impl GeOptions {
    /// The paper's GE algorithm.
    pub fn paper() -> Self {
        GeOptions {
            label: "GE",
            cutting: true,
            compensation: true,
            target_quality_offset: 0.0,
            power_policy: PowerPolicy::Hybrid,
            budget_override_w: None,
            speed_cap_ghz: None,
            plain_rr: false,
            force_full_replan: false,
        }
    }

    /// The BE (Best Effort) baseline: BQ always, WF always (§IV-A-1).
    pub fn best_effort() -> Self {
        GeOptions {
            label: "BE",
            cutting: false,
            compensation: false,
            target_quality_offset: 0.0,
            power_policy: PowerPolicy::WaterFillingOnly,
            budget_override_w: None,
            speed_cap_ghz: None,
            plain_rr: false,
            force_full_replan: false,
        }
    }
}

/// Per-core state carried between epochs by the incremental replanner.
///
/// See DESIGN.md ("Dirty-bit invariants") for the argument that the
/// skip is sound: a clean core's installed plan, targets, and cached
/// power demand are exactly what a full replan would recompute (the
/// demand up to float round-off, since a mid-plan YDS recompute divides
/// the same residual work by the same residual window).
#[derive(Debug)]
struct ReplanCache {
    /// False until the first epoch has planned every core.
    primed: bool,
    /// Core must be replanned this epoch.
    dirty: Vec<bool>,
    /// Fingerprint of each core's resident job-id set at the last plan —
    /// detects completions/expirations reaped by the driver, which the
    /// scheduler never observes directly.
    fp: Vec<u64>,
    /// DVFS actuation factor at the last install; a fault-injected change
    /// only takes effect at the next install, so it must force one.
    speed_factor: Vec<f64>,
    /// Power demand (W at the uncapped Energy-OPT peak) from the last plan.
    demand_w: Vec<f64>,
    /// Peak speed (GHz) of the last uncapped plan; a granted cap below
    /// this invalidates the kept plan.
    peak_speed: Vec<f64>,
    /// The last finalize needed a Quality-OPT second cut. Capped cores
    /// are replanned every epoch: a full replan first *undoes* the second
    /// cut (fresh LF-cut targets) before re-cutting, and skipping would
    /// freeze the deeper cut even after power frees up.
    was_capped: Vec<bool>,
    /// The uncapped Energy-OPT plan computed this epoch (dirty cores
    /// only), reused by finalize when no second cut is needed.
    uncapped: Vec<SpeedProfile>,
    /// Online mask at the last epoch; any up/down transition replans all.
    last_online: Vec<bool>,
    /// Budget throttle factor at the last epoch.
    last_budget_factor: f64,
    /// ES/WF selection at the last epoch (`None` before the first).
    last_use_wf: Option<bool>,
}

impl ReplanCache {
    fn new(cores: usize) -> Self {
        ReplanCache {
            primed: false,
            dirty: vec![true; cores],
            fp: vec![0; cores],
            speed_factor: vec![1.0; cores],
            demand_w: vec![0.0; cores],
            peak_speed: vec![0.0; cores],
            was_capped: vec![false; cores],
            uncapped: (0..cores).map(|_| SpeedProfile::empty()).collect(),
            last_online: vec![false; cores],
            last_budget_factor: 1.0,
            last_use_wf: None,
        }
    }
}

/// Scheduler-owned scratch buffers: every per-epoch temporary the old
/// code allocated (`Vec<bool>` online masks, `Vec<YdsJob>` batches, sort
/// orders, believed-demand snapshots) now lives here and is reused, so a
/// steady-state epoch performs no buffer allocations. Buffers are
/// `mem::take`n inside `on_schedule` to sidestep borrow conflicts and
/// put back before returning.
#[derive(Debug, Default)]
struct EpochScratch {
    online: Vec<bool>,
    batch: Vec<ge_workload::Job>,
    assign_targets: Vec<usize>,
    demands: Vec<f64>,
    online_idx: Vec<usize>,
    caps: Vec<f64>,
    believed: Vec<f64>,
    yds_jobs: Vec<YdsJob>,
    order: Vec<usize>,
    fin_demands: Vec<f64>,
    fin_budgets: Vec<f64>,
    chosen: Vec<f64>,
    yds: YdsScratch,
    cut: CutScratch,
    cut_out: CutOutcome,
}

/// Cumulative incremental-replanning statistics for one scheduler run.
///
/// Epoch counters partition planned epochs (`full_epochs` +
/// `incremental_epochs` ≤ [`GeScheduler::epochs`]; epochs with every
/// core offline plan nothing and count in neither). Per-core counters
/// partition online-core plan decisions, and the `dirty_*` counters
/// attribute each *incremental-epoch* invalidation to its cause. Under
/// `force_full_replan` every planned epoch is a full epoch and all
/// dirty-cause counters stay 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplanStats {
    /// Epochs where a global invalidation replanned every online core.
    pub full_epochs: u64,
    /// Epochs in which at least one online core kept its plan.
    pub incremental_epochs: u64,
    /// Per-core plans recomputed (uncapped pipeline runs).
    pub cores_replanned: u64,
    /// Per-core plans kept verbatim — the cache-hit count.
    pub cores_skipped: u64,
    /// Cores invalidated because their resident job set changed under
    /// the scheduler (completions/expirations reaped by the driver).
    pub dirty_fingerprint: u64,
    /// Cores invalidated by a non-nominal or changed DVFS speed factor.
    pub dirty_speed_factor: u64,
    /// Cores replanned because their last finalize was second-cut
    /// (capped cores replan every epoch).
    pub dirty_capped: u64,
    /// Cores invalidated by new work: a batch assignment or an adopted
    /// orphan (counted once per core per epoch, on the clean→dirty edge).
    pub dirty_assignment: u64,
    /// Clean cores whose granted cap shrank below the kept plan's peak.
    pub dirty_cap_shrunk: u64,
}

impl ReplanStats {
    fn encode(&self, enc: &mut ge_recover::Encoder) {
        enc.put_u64(self.full_epochs);
        enc.put_u64(self.incremental_epochs);
        enc.put_u64(self.cores_replanned);
        enc.put_u64(self.cores_skipped);
        enc.put_u64(self.dirty_fingerprint);
        enc.put_u64(self.dirty_speed_factor);
        enc.put_u64(self.dirty_capped);
        enc.put_u64(self.dirty_assignment);
        enc.put_u64(self.dirty_cap_shrunk);
    }

    fn decode(dec: &mut ge_recover::Decoder<'_>) -> Result<Self, ge_recover::CodecError> {
        Ok(ReplanStats {
            full_epochs: dec.get_u64("ge.stats.full_epochs")?,
            incremental_epochs: dec.get_u64("ge.stats.incremental_epochs")?,
            cores_replanned: dec.get_u64("ge.stats.cores_replanned")?,
            cores_skipped: dec.get_u64("ge.stats.cores_skipped")?,
            dirty_fingerprint: dec.get_u64("ge.stats.dirty_fingerprint")?,
            dirty_speed_factor: dec.get_u64("ge.stats.dirty_speed_factor")?,
            dirty_capped: dec.get_u64("ge.stats.dirty_capped")?,
            dirty_assignment: dec.get_u64("ge.stats.dirty_assignment")?,
            dirty_cap_shrunk: dec.get_u64("ge.stats.dirty_cap_shrunk")?,
        })
    }
}

/// Cached live-registry gauge handles mirroring [`ReplanStats`]; resolved
/// once on the first telemetry-enabled epoch (derived state — never
/// checkpointed).
struct ReplanGauges {
    full_epochs: Gauge,
    incremental_epochs: Gauge,
    cores_replanned: Gauge,
    cores_skipped: Gauge,
    dirty_fingerprint: Gauge,
    dirty_speed_factor: Gauge,
    dirty_capped: Gauge,
    dirty_assignment: Gauge,
    dirty_cap_shrunk: Gauge,
}

impl ReplanGauges {
    fn new() -> Self {
        let r = Telemetry::registry();
        ReplanGauges {
            full_epochs: r.gauge("ge_replan_full_epochs"),
            incremental_epochs: r.gauge("ge_replan_incremental_epochs"),
            cores_replanned: r.gauge("ge_replan_cores_replanned"),
            cores_skipped: r.gauge("ge_replan_cores_skipped"),
            dirty_fingerprint: r.gauge("ge_replan_dirty_fingerprint"),
            dirty_speed_factor: r.gauge("ge_replan_dirty_speed_factor"),
            dirty_capped: r.gauge("ge_replan_dirty_capped"),
            dirty_assignment: r.gauge("ge_replan_dirty_assignment"),
            dirty_cap_shrunk: r.gauge("ge_replan_dirty_cap_shrunk"),
        }
    }

    fn publish(&self, s: &ReplanStats) {
        self.full_epochs.set(s.full_epochs as f64);
        self.incremental_epochs.set(s.incremental_epochs as f64);
        self.cores_replanned.set(s.cores_replanned as f64);
        self.cores_skipped.set(s.cores_skipped as f64);
        self.dirty_fingerprint.set(s.dirty_fingerprint as f64);
        self.dirty_speed_factor.set(s.dirty_speed_factor as f64);
        self.dirty_capped.set(s.dirty_capped as f64);
        self.dirty_assignment.set(s.dirty_assignment as f64);
        self.dirty_cap_shrunk.set(s.dirty_cap_shrunk as f64);
    }
}

/// Order-sensitive FNV-1a over a core's resident job-id sequence, salted
/// with the length. Jobs never reorder in place (reaps shift, arrivals
/// append), so any reap or adoption changes the fingerprint.
fn job_set_fingerprint(jobs: &[CoreJob]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (jobs.len() as u64);
    for j in jobs {
        h ^= j.id.index() as u64 ^ 0x9E37_79B9_7F4A_7C15;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The GE scheduler (and, via [`GeOptions`], the whole BE family).
pub struct GeScheduler {
    opts: GeOptions,
    q_ge: f64,
    q_min: f64,
    critical_load_rps: f64,
    budget_w: f64,
    power_beta: f64,
    cores: usize,
    units_per_ghz_sec: f64,
    model: PolynomialPower,
    discrete: Option<ge_power::DiscreteSpeedSet>,
    crr: CrrAssigner,
    mode: usize,
    epochs: u64,
    cache: ReplanCache,
    scratch: EpochScratch,
    /// Cumulative replanning statistics (checkpointed; see encode_state).
    stats: ReplanStats,
    /// Lazily-resolved registry gauges mirroring `stats`.
    gauges: Option<ReplanGauges>,
}

impl GeScheduler {
    /// Creates a scheduler for the given platform configuration.
    pub fn new(cfg: &SimConfig, opts: GeOptions) -> Self {
        cfg.validate();
        let budget = opts.budget_override_w.unwrap_or(cfg.budget_w);
        assert!(budget > 0.0, "budget override must be positive");
        GeScheduler {
            q_ge: cfg.q_ge,
            q_min: cfg.q_min,
            critical_load_rps: cfg.critical_load_rps,
            budget_w: budget,
            power_beta: cfg.power_beta,
            cores: cfg.cores,
            units_per_ghz_sec: cfg.units_per_ghz_sec,
            model: PolynomialPower::new(cfg.power_a, cfg.power_beta),
            discrete: cfg.discrete_speeds.clone(),
            crr: CrrAssigner::new(cfg.cores),
            mode: if opts.cutting { MODE_AES } else { MODE_BQ },
            epochs: 0,
            cache: ReplanCache::new(cfg.cores),
            scratch: EpochScratch::default(),
            stats: ReplanStats::default(),
            gauges: None,
            opts,
        }
    }

    /// Number of epochs this scheduler has run.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Cumulative incremental-replanning statistics: full vs incremental
    /// epochs, per-core plan cache hits, and the dirty-bit cause
    /// breakdown. All cause counters are 0 under `force_full_replan`.
    pub fn replan_stats(&self) -> ReplanStats {
        self.stats
    }

    /// The effective cut target (`Q_GE` plus any OQ offset, clamped to 1).
    fn cut_target(&self) -> f64 {
        (self.q_ge + self.opts.target_quality_offset).min(1.0)
    }

    /// The cut target under a throttled budget. Power scales as `s^β`, so
    /// the volume a budget `φ·H` can retire scales roughly as `φ^(1/β)`;
    /// the cut aims there instead of chasing the unattainable nominal
    /// target, but never drops below the `Q_min` floor.
    fn effective_cut_target(&self, budget_factor: f64) -> f64 {
        let base = self.cut_target();
        if budget_factor >= 1.0 {
            return base;
        }
        (base * budget_factor.powf(1.0 / self.power_beta)).max(self.q_min.min(base))
    }

    /// Step 2: the AES/BQ mode decision.
    ///
    /// Under a throttled budget the compensation policy is overridden:
    /// entering BQ would spend *more* energy chasing quality the shrunken
    /// budget cannot deliver, so the scheduler stays in AES and cuts
    /// deeper (see [`Self::effective_cut_target`]).
    fn decide_mode(&mut self, monitored_quality: f64, budget_factor: f64) {
        if !self.opts.cutting {
            self.mode = MODE_BQ;
            return;
        }
        if budget_factor < 1.0 - 1e-12 {
            self.mode = MODE_AES;
            return;
        }
        if !self.opts.compensation {
            self.mode = MODE_AES;
            return;
        }
        self.mode = if monitored_quality < self.q_ge {
            MODE_BQ
        } else {
            MODE_AES
        };
    }

    /// `Q_min` admission control: when the projected batch quality under
    /// the currently degraded capacity falls below the floor, the most
    /// recently arrived jobs are rejected outright (pushed into
    /// `ctx.shed`) so the remaining batch can still be served at or above
    /// `Q_min`, instead of every job starving a little.
    ///
    /// The projection is a deliberately coarse mean-field bound: assume
    /// the whole effective budget is split equally (`s_ES`), spread the
    /// capacity of the surviving cores over the batch, and score the mean
    /// job against its mean estimate.
    fn shed_below_floor(
        &self,
        ctx: &mut ScheduleCtx<'_>,
        batch: &mut Vec<ge_workload::Job>,
        m_online: usize,
        h_eff: f64,
    ) {
        if self.q_min <= 0.0 || batch.is_empty() {
            return;
        }
        let f = ctx.quality_fn;
        let s_es = self.model.speed_for_power(h_eff / m_online as f64);
        loop {
            let n = batch.len();
            if n == 0 {
                break;
            }
            let mean_window: f64 = batch
                .iter()
                .map(|j| j.deadline.saturating_since(ctx.now).as_secs())
                .sum::<f64>()
                / n as f64;
            let mean_est: f64 = batch.iter().map(|j| j.estimate).sum::<f64>() / n as f64;
            if mean_est <= 0.0 {
                break;
            }
            let per_job = m_online as f64 * s_es * self.units_per_ghz_sec * mean_window / n as f64;
            let projected = f.value(per_job.min(mean_est)) / f.value(mean_est);
            if projected >= self.q_min {
                break;
            }
            let job = batch.pop().expect("non-empty batch");
            if ctx.sink.is_enabled() {
                ctx.sink.record(&TraceEvent::JobShed {
                    t: ctx.now.as_secs(),
                    job: job.id.index() as u64,
                    estimate: job.estimate,
                    full_demand: job.demand,
                    projected_quality: projected,
                });
            }
            ctx.shed.push(job);
        }
    }

    /// Steps 3–6 for one core: set targets, plan speeds. Caches the
    /// core's power demand (watts at its planned peak speed), its peak
    /// speed, and the uncapped plan in the [`ReplanCache`]; the plan is
    /// reused by [`Self::finalize_core`] when no second cut binds.
    fn plan_core_uncapped(&mut self, ctx: &mut ScheduleCtx<'_>, core_idx: usize, cut_target: f64) {
        self.stats.cores_replanned += 1;
        let now = ctx.now;
        let f = ctx.quality_fn;

        // -- Targets (LF cut in AES, full believed demand in BQ) ---------
        // All planning runs on the scheduler's demand *estimates*; the
        // execution engine and the ledger use the true demand, so
        // misestimation shows up as wasted energy (overestimate) or lost
        // quality (underestimate) — never as clairvoyance.
        if self.mode == MODE_AES && self.opts.cutting {
            let mut believed = std::mem::take(&mut self.scratch.believed);
            let mut cut = std::mem::take(&mut self.scratch.cut_out);
            believed.clear();
            believed.extend(ctx.server.core(core_idx).jobs().iter().map(|j| j.estimate));
            if !believed.is_empty() {
                lf_cut_with(f, &believed, cut_target, &mut self.scratch.cut, &mut cut);
                let core = ctx.server.core_mut(core_idx);
                for (job, &c) in core.jobs_mut().iter_mut().zip(&cut.cut_demands) {
                    // Never below already-processed volume, never above
                    // the believed demand.
                    job.target_demand = c.max(job.processed).min(job.estimate);
                }
                if ctx.sink.is_enabled() {
                    let volume_before: f64 = believed.iter().sum();
                    let volume_after: f64 = core.jobs().iter().map(|j| j.target_demand).sum();
                    ctx.sink.record(&TraceEvent::LfCut {
                        t: now.as_secs(),
                        level: cut.level,
                        target_quality: cut_target,
                        jobs: believed.len() as u64,
                        volume_before,
                        volume_after,
                    });
                    for job in core.jobs() {
                        if job.target_demand < job.estimate - 1e-12 {
                            ctx.sink.record(&TraceEvent::JobCut {
                                t: now.as_secs(),
                                job: job.id.index() as u64,
                                full_demand: job.estimate,
                                cut_demand: job.target_demand,
                            });
                        }
                    }
                }
            }
            self.scratch.believed = believed;
            self.scratch.cut_out = cut;
        } else {
            for job in ctx.server.core_mut(core_idx).jobs_mut() {
                job.target_demand = job.estimate.max(job.processed);
            }
        }

        // -- Energy-OPT plan over remaining work -------------------------
        let mut yds_jobs = std::mem::take(&mut self.scratch.yds_jobs);
        yds_jobs.clear();
        yds_jobs.extend(
            ctx.server
                .core(core_idx)
                .jobs()
                .iter()
                .filter(|j| j.remaining() > 1e-9 && j.deadline.after(now))
                .enumerate()
                .map(|(i, j)| {
                    YdsJob::new(
                        i,
                        now.as_secs(),
                        j.deadline.as_secs(),
                        j.remaining() / self.units_per_ghz_sec,
                    )
                }),
        );
        let plan = yds_schedule_with(&yds_jobs, &mut self.scratch.yds);
        self.scratch.yds_jobs = yds_jobs;
        self.cache.demand_w[core_idx] = self.model.power(plan.peak_speed);
        self.cache.peak_speed[core_idx] = plan.peak_speed;
        self.cache.uncapped[core_idx] = plan.profile;
    }

    /// Applies the granted power cap to a core: second (Quality-OPT) cut
    /// if needed, re-plan, and install. When no cut binds, the uncapped
    /// Energy-OPT plan cached by [`Self::plan_core_uncapped`] this epoch
    /// is installed directly instead of being recomputed.
    fn finalize_core(&mut self, ctx: &mut ScheduleCtx<'_>, core_idx: usize, cap_w: f64) {
        let now = ctx.now;
        let mut s_cap = self.model.speed_for_power(cap_w);
        if let Some(cap) = self.opts.speed_cap_ghz {
            s_cap = s_cap.min(cap);
        }
        if ctx.sink.is_enabled() {
            ctx.sink.record(&TraceEvent::CoreCap {
                t: now.as_secs(),
                core: core_idx as u64,
                cap_w,
                speed_cap_ghz: s_cap,
            });
        }

        // Indices of plannable jobs in deadline (EDF) order.
        let mut order = std::mem::take(&mut self.scratch.order);
        order.clear();
        {
            let core = ctx.server.core(core_idx);
            order.extend((0..core.jobs().len()).filter(|&i| {
                let j = &core.jobs()[i];
                j.remaining() > 1e-9 && j.deadline.after(now)
            }));
            order.sort_by(|&a, &b| {
                let ja = &core.jobs()[a];
                let jb = &core.jobs()[b];
                ja.deadline.total_cmp(&jb.deadline).then(ja.id.cmp(&jb.id))
            });
        }
        if order.is_empty() {
            ctx.server
                .core_mut(core_idx)
                .install_plan(SpeedProfile::empty(), cap_w);
            self.cache.was_capped[core_idx] = false;
            self.scratch.order = order;
            return;
        }

        // Can the cap execute the batch? Peak feasible speed check.
        let needs_cut = {
            let core = ctx.server.core(core_idx);
            let mut cum_work = 0.0;
            let mut peak = 0.0f64;
            for &i in order.iter() {
                let j = &core.jobs()[i];
                cum_work += j.remaining() / self.units_per_ghz_sec;
                let window = j.deadline.saturating_since(now).as_secs().max(1e-9);
                peak = peak.max(cum_work / window);
            }
            peak > s_cap + 1e-9
        };
        self.cache.was_capped[core_idx] = needs_cut;

        let segments: Vec<SpeedSegment> = if needs_cut {
            // Quality-OPT second cut: prefix-constrained level fill on the
            // volume achievable by each deadline at the capped speed.
            let mut demands = std::mem::take(&mut self.scratch.fin_demands);
            let mut budgets = std::mem::take(&mut self.scratch.fin_budgets);
            demands.clear();
            budgets.clear();
            {
                let core = ctx.server.core(core_idx);
                demands.extend(order.iter().map(|&i| core.jobs()[i].remaining()));
                budgets.extend(order.iter().map(|&i| {
                    let j = &core.jobs()[i];
                    s_cap * j.deadline.saturating_since(now).as_secs() * self.units_per_ghz_sec
                }));
            }
            let alloc = prefix_level_fill(&demands, &budgets);
            let core = ctx.server.core_mut(core_idx);
            for (&i, &a) in order.iter().zip(&alloc) {
                let j = &mut core.jobs_mut()[i];
                j.target_demand = (j.processed + a).min(j.estimate.max(j.processed));
            }
            if ctx.sink.is_enabled() {
                ctx.sink.record(&TraceEvent::SecondCut {
                    t: now.as_secs(),
                    core: core_idx as u64,
                    volume_before: demands.iter().sum(),
                    volume_after: alloc.iter().sum(),
                });
            }
            self.scratch.fin_demands = demands;
            self.scratch.fin_budgets = budgets;

            // Final Energy-OPT plan over the twice-cut targets.
            let mut yds_jobs = std::mem::take(&mut self.scratch.yds_jobs);
            yds_jobs.clear();
            {
                let core = ctx.server.core(core_idx);
                yds_jobs.extend(
                    order
                        .iter()
                        .enumerate()
                        .filter(|(_, &i)| core.jobs()[i].remaining() > 1e-9)
                        .map(|(k, &i)| {
                            let j = &core.jobs()[i];
                            YdsJob::new(
                                k,
                                now.as_secs(),
                                j.deadline.as_secs(),
                                j.remaining() / self.units_per_ghz_sec,
                            )
                        }),
                );
            }
            let plan = yds_schedule_with(&yds_jobs, &mut self.scratch.yds);
            self.scratch.yds_jobs = yds_jobs;

            // Clamp at the cap (numerical safety; the cut guarantees
            // feasibility up to rounding).
            plan.profile
                .segments()
                .iter()
                .map(|s| SpeedSegment::new(s.start, s.end, s.speed_ghz.min(s_cap)))
                .collect()
        } else {
            // No cut binds: the uncapped plan computed this epoch is the
            // final plan (the clamp is an identity when s_cap ≥ peak, but
            // kept for numerical safety near the boundary).
            self.cache.uncapped[core_idx]
                .segments()
                .iter()
                .map(|s| SpeedSegment::new(s.start, s.end, s.speed_ghz.min(s_cap)))
                .collect()
        };
        if ctx.sink.is_enabled() {
            for s in &segments {
                ctx.sink.record(&TraceEvent::SpeedSegment {
                    t: now.as_secs(),
                    core: core_idx as u64,
                    start_s: s.start.as_secs(),
                    end_s: s.end.as_secs(),
                    speed_ghz: s.speed_ghz,
                });
            }
        }
        ctx.server
            .core_mut(core_idx)
            .install_plan(SpeedProfile::new(segments), cap_w);
        self.scratch.order = order;
    }

    /// Rebuilds every online core's plan as a single constant rectified
    /// speed (discrete-DVFS mode, §IV-A-5). Incremental replanning is
    /// disabled whenever a ladder is configured, so `online_idx` always
    /// covers every online core here.
    fn apply_discrete(
        &mut self,
        ctx: &mut ScheduleCtx<'_>,
        caps: &[f64],
        online_idx: &[usize],
        h_eff: f64,
    ) {
        let Some(ladder) = &self.discrete else {
            return;
        };
        let now = ctx.now;
        // Chosen continuous speed per core = peak of its installed plan.
        let mut chosen = std::mem::take(&mut self.scratch.chosen);
        chosen.clear();
        chosen.extend(
            online_idx
                .iter()
                .map(|&i| ctx.server.core(i).profile().max_speed()),
        );
        let rectified = ladder.rectify(&chosen, &self.model, h_eff);
        self.scratch.chosen = chosen;
        for (k, &i) in online_idx.iter().enumerate() {
            let speed = rectified[k];
            let core = ctx.server.core_mut(i);
            let last_deadline = core
                .jobs()
                .iter()
                .filter(|j| j.remaining() > 1e-9)
                .map(|j| j.deadline)
                .fold(now, SimTime::max);
            let profile = if speed > 0.0 && last_deadline.after(now) {
                if ctx.sink.is_enabled() {
                    ctx.sink.record(&TraceEvent::SpeedSegment {
                        t: now.as_secs(),
                        core: i as u64,
                        start_s: now.as_secs(),
                        end_s: last_deadline.as_secs(),
                        speed_ghz: speed,
                    });
                }
                SpeedProfile::constant(now, last_deadline, speed)
            } else {
                SpeedProfile::empty()
            };
            core.install_plan(profile, caps[i]);
        }
    }
}

impl Scheduler for GeScheduler {
    fn name(&self) -> &str {
        self.opts.label
    }

    fn triggers(&self) -> TriggerSet {
        TriggerSet::batch()
    }

    fn current_mode(&self) -> usize {
        self.mode
    }

    // Persistent cross-epoch state: the mode, epoch counters, the C-RR
    // cursor, and the *entire* replan cache. The cache must be serialized,
    // not reset: a reset would force a full replan on the first resumed
    // epoch, and the full and incremental paths agree only up to float
    // round-off — a reset run would drift from the uninterrupted one at
    // the bit level. `EpochScratch` (including the YDS `InverseMemo`) is
    // deliberately dropped: scratch is rebuilt from scratch each epoch,
    // and the memo is a pure bit-pattern-keyed cache of a deterministic
    // function, so losing it changes nothing but speed.
    fn encode_state(&self, enc: &mut ge_recover::Encoder) {
        enc.put_usize(self.mode);
        enc.put_u64(self.epochs);
        self.stats.encode(enc);
        enc.put_usize(self.crr.cursor());
        let c = &self.cache;
        enc.put_bool(c.primed);
        enc.put_bool_slice(&c.dirty);
        enc.put_u64_slice(&c.fp);
        enc.put_f64_slice(&c.speed_factor);
        enc.put_f64_slice(&c.demand_w);
        enc.put_f64_slice(&c.peak_speed);
        enc.put_bool_slice(&c.was_capped);
        enc.put_usize(c.uncapped.len());
        for profile in &c.uncapped {
            let segs = profile.segments();
            enc.put_usize(segs.len());
            for s in segs {
                enc.put_f64(s.start.as_secs());
                enc.put_f64(s.end.as_secs());
                enc.put_f64(s.speed_ghz);
            }
        }
        enc.put_bool_slice(&c.last_online);
        enc.put_f64(c.last_budget_factor);
        enc.put_opt_bool(c.last_use_wf);
    }

    fn restore_state(
        &mut self,
        dec: &mut ge_recover::Decoder<'_>,
    ) -> Result<(), ge_recover::CodecError> {
        use ge_recover::CodecError;
        let n = self.cores;
        let check_len = |field: &'static str, len: usize| {
            if len == n {
                Ok(())
            } else {
                Err(CodecError::Invalid {
                    field,
                    reason: "per-core vector length disagrees with core count",
                })
            }
        };
        self.mode = dec.get_usize_bounded("ge.mode", 1)?;
        self.epochs = dec.get_u64("ge.epochs")?;
        self.stats = ReplanStats::decode(dec)?;
        let cursor = dec.get_usize_bounded("ge.crr_cursor", n.saturating_sub(1))?;
        self.crr.set_cursor(cursor);
        self.cache.primed = dec.get_bool("ge.cache.primed")?;
        self.cache.dirty = dec.get_bool_vec("ge.cache.dirty")?;
        check_len("ge.cache.dirty", self.cache.dirty.len())?;
        self.cache.fp = dec.get_u64_vec("ge.cache.fp")?;
        check_len("ge.cache.fp", self.cache.fp.len())?;
        self.cache.speed_factor = dec.get_f64_vec("ge.cache.speed_factor")?;
        check_len("ge.cache.speed_factor", self.cache.speed_factor.len())?;
        self.cache.demand_w = dec.get_f64_vec("ge.cache.demand_w")?;
        check_len("ge.cache.demand_w", self.cache.demand_w.len())?;
        self.cache.peak_speed = dec.get_f64_vec("ge.cache.peak_speed")?;
        check_len("ge.cache.peak_speed", self.cache.peak_speed.len())?;
        self.cache.was_capped = dec.get_bool_vec("ge.cache.was_capped")?;
        check_len("ge.cache.was_capped", self.cache.was_capped.len())?;
        let profiles = dec.get_usize_bounded("ge.cache.uncapped", n)?;
        check_len("ge.cache.uncapped", profiles)?;
        let mut uncapped = Vec::with_capacity(profiles);
        for _ in 0..profiles {
            let segs = dec.get_len("ge.cache.uncapped.segments")?;
            let mut out = Vec::with_capacity(segs.min(64));
            for _ in 0..segs {
                let start = dec.get_f64("ge.cache.uncapped.start")?;
                let end = dec.get_f64("ge.cache.uncapped.end")?;
                let speed = dec.get_f64("ge.cache.uncapped.speed")?;
                if !(start.is_finite() && end.is_finite() && end > start) {
                    return Err(CodecError::Invalid {
                        field: "ge.cache.uncapped",
                        reason: "malformed speed segment",
                    });
                }
                if !(speed.is_finite() && speed >= 0.0) {
                    return Err(CodecError::Invalid {
                        field: "ge.cache.uncapped",
                        reason: "malformed segment speed",
                    });
                }
                out.push(SpeedSegment::new(
                    SimTime::from_secs(start),
                    SimTime::from_secs(end),
                    speed,
                ));
            }
            if out
                .windows(2)
                .any(|w| w[1].start.as_secs() < w[0].end.as_secs() - 1e-9)
            {
                return Err(CodecError::Invalid {
                    field: "ge.cache.uncapped",
                    reason: "overlapping speed segments",
                });
            }
            uncapped.push(SpeedProfile::new(out));
        }
        self.cache.uncapped = uncapped;
        self.cache.last_online = dec.get_bool_vec("ge.cache.last_online")?;
        check_len("ge.cache.last_online", self.cache.last_online.len())?;
        self.cache.last_budget_factor = dec.get_f64("ge.cache.last_budget_factor")?;
        self.cache.last_use_wf = dec.get_opt_bool("ge.cache.last_use_wf")?;
        Ok(())
    }

    fn on_schedule(&mut self, ctx: &mut ScheduleCtx<'_>) {
        let _span = SpanGuard::enter_sampled("ge_on_schedule");
        self.epochs += 1;
        let h_eff = self.budget_w * ctx.budget_factor;
        let mut online = std::mem::take(&mut self.scratch.online);
        online.clear();
        online.extend((0..self.cores).map(|i| ctx.server.core(i).is_online()));
        let m_online = online.iter().filter(|&&up| up).count();

        // 2. Mode decision (compensation policy; throttling forces AES).
        let monitored = ctx.ledger.quality();
        let prev_mode = self.mode;
        self.decide_mode(monitored, ctx.budget_factor);
        if self.mode != prev_mode && ctx.sink.is_enabled() {
            ctx.sink.record(&TraceEvent::ModeSwitch {
                t: ctx.now.as_secs(),
                from_mode: prev_mode as u64,
                to_mode: self.mode as u64,
                ledger_quality: monitored,
            });
        }

        // Every core down: nothing can be assigned or planned. Queued
        // jobs wait (or expire) until a recovery re-triggers us. The
        // cache is left unprimed state-wise: dirty bits stay set, so the
        // recovery epoch replans from scratch.
        if m_online == 0 {
            self.cache.dirty.iter_mut().for_each(|d| *d = true);
            self.cache.primed = false;
            self.scratch.online = online;
            return;
        }

        // ── Dirty-bit determination ─────────────────────────────────────
        // The ES/WF selection is an epoch-global planning input, so it is
        // decided up front (the PowerSplit event is still emitted at its
        // usual point below).
        let use_wf = match self.opts.power_policy {
            PowerPolicy::Hybrid => ctx.load_estimate_rps >= self.critical_load_rps,
            PowerPolicy::EqualSharingOnly => false,
            PowerPolicy::WaterFillingOnly => true,
        };
        // Global invalidations replan every core: any change to an input
        // that shapes all plans (mode, throttle, ES/WF flip, the online
        // set), plus modes where incrementality is off entirely (discrete
        // DVFS rebuilds every plan each epoch by design).
        let force_full = self.opts.force_full_replan
            || self.discrete.is_some()
            || !self.cache.primed
            || self.mode != prev_mode
            || ctx.budget_factor != self.cache.last_budget_factor
            || Some(use_wf) != self.cache.last_use_wf
            || online != self.cache.last_online;
        if force_full {
            self.cache.dirty.iter_mut().for_each(|d| *d = true);
            self.stats.full_epochs += 1;
        } else {
            for (i, &up) in online.iter().enumerate() {
                if !up || self.cache.dirty[i] {
                    continue;
                }
                let core = ctx.server.core(i);
                // Reaped completions/expirations (the driver removes them
                // without telling the scheduler) invalidate the kept
                // plan. So does any non-nominal DVFS factor — not just a
                // *changed* one: while delivered speed ≠ planned speed,
                // execution drifts off the plan every slice, and a full
                // replan would keep re-adapting to the shortfall.
                if job_set_fingerprint(core.jobs()) != self.cache.fp[i] {
                    self.stats.dirty_fingerprint += 1;
                    self.cache.dirty[i] = true;
                } else if core.speed_factor() != self.cache.speed_factor[i]
                    || core.speed_factor() != 1.0
                {
                    self.stats.dirty_speed_factor += 1;
                    self.cache.dirty[i] = true;
                }
            }
            // Cores whose last finalize was second-cut replan every epoch:
            // a full replan would first restore the LF-cut targets and
            // re-derive the (possibly shallower) second cut from current
            // power, which a skip would freeze.
            for (i, &up) in online.iter().enumerate() {
                if up && self.cache.was_capped[i] {
                    if !self.cache.dirty[i] {
                        self.stats.dirty_capped += 1;
                    }
                    self.cache.dirty[i] = true;
                }
            }
        }

        // 0. Replan on core loss: re-home jobs preempted off failed
        //    cores. They keep their accumulated progress and re-enter
        //    C-RR over the surviving cores.
        for job in ctx.orphans.drain(..) {
            let core_idx = self.crr.assign_one_online(&online);
            if ctx.sink.is_enabled() {
                ctx.sink.record(&TraceEvent::JobAssigned {
                    t: ctx.now.as_secs(),
                    job: job.id.index() as u64,
                    core: core_idx as u64,
                });
            }
            ctx.server.core_mut(core_idx).adopt(job);
            if !self.cache.dirty[core_idx] {
                self.stats.dirty_assignment += 1;
            }
            self.cache.dirty[core_idx] = true;
        }

        // 1. C-RR batch assignment (or plain RR in the ablation), gated
        //    by the Q_min admission floor under degraded capacity.
        if self.opts.plain_rr {
            self.crr.reset();
        }
        let mut batch = std::mem::take(&mut self.scratch.batch);
        batch.clear();
        batch.append(ctx.queue);
        self.shed_below_floor(ctx, &mut batch, m_online, h_eff);
        let mut targets = std::mem::take(&mut self.scratch.assign_targets);
        self.crr
            .assign_batch_online_into(batch.len(), &online, &mut targets);
        for (job, &core_idx) in batch.iter().zip(&targets) {
            ctx.server.core_mut(core_idx).assign(job);
            if !self.cache.dirty[core_idx] {
                self.stats.dirty_assignment += 1;
            }
            self.cache.dirty[core_idx] = true;
            if ctx.sink.is_enabled() {
                ctx.sink.record(&TraceEvent::JobAssigned {
                    t: ctx.now.as_secs(),
                    job: job.id.index() as u64,
                    core: core_idx as u64,
                });
            }
        }
        self.scratch.assign_targets = targets;
        batch.clear();
        self.scratch.batch = batch;

        // 3–5. Per-core targets and uncapped Energy-OPT plans — dirty
        // cores only. Clean cores contribute their cached power demand:
        // re-running YDS mid-plan divides the same residual work by the
        // same residual window, so the cached demand is what a recompute
        // would return (to float round-off).
        let cut_target = self.effective_cut_target(ctx.budget_factor);
        let mut demands = std::mem::take(&mut self.scratch.demands);
        let mut online_idx = std::mem::take(&mut self.scratch.online_idx);
        demands.clear();
        online_idx.clear();
        for (i, &up) in online.iter().enumerate() {
            if !up {
                continue;
            }
            if self.cache.dirty[i] {
                self.plan_core_uncapped(ctx, i, cut_target);
            }
            demands.push(self.cache.demand_w[i]);
            online_idx.push(i);
        }

        // 4. Hybrid power distribution over the *effective* budget.
        if ctx.sink.is_enabled() {
            ctx.sink.record(&TraceEvent::PowerSplit {
                t: ctx.now.as_secs(),
                policy: if use_wf {
                    SplitPolicy::WaterFilling
                } else {
                    SplitPolicy::EqualShare
                },
                load_estimate_rps: ctx.load_estimate_rps,
                budget_w: h_eff,
            });
        }
        let caps_online = if use_wf {
            distribute_water_filling(&demands, h_eff)
        } else {
            distribute_equal_sharing(m_online, h_eff)
        };

        // 5–6. Cap-aware finalization per online core. A clean core whose
        // granted cap still covers its kept plan's peak is skipped
        // outright — plan, targets, and cap metadata stay as installed.
        let mut caps = std::mem::take(&mut self.scratch.caps);
        caps.clear();
        caps.resize(self.cores, 0.0);
        let mut skipped_this_epoch = 0u64;
        for (k, &i) in online_idx.iter().enumerate() {
            caps[i] = caps_online[k];
            if !self.cache.dirty[i] {
                let mut s_cap = self.model.speed_for_power(caps_online[k]);
                if let Some(cap) = self.opts.speed_cap_ghz {
                    s_cap = s_cap.min(cap);
                }
                if s_cap + 1e-9 >= self.cache.peak_speed[i] {
                    skipped_this_epoch += 1;
                    continue;
                }
                // The cap shrank below the kept peak (another core's
                // demand moved the water-filling level): bring the core
                // through the full pipeline after all.
                self.stats.dirty_cap_shrunk += 1;
                self.plan_core_uncapped(ctx, i, cut_target);
            }
            self.finalize_core(ctx, i, caps_online[k]);
        }
        if skipped_this_epoch > 0 {
            self.stats.incremental_epochs += 1;
            self.stats.cores_skipped += skipped_this_epoch;
        }

        // Discrete-DVFS rectification (optional).
        self.apply_discrete(ctx, &caps, &online_idx, h_eff);

        // ── Commit the epoch snapshot ───────────────────────────────────
        for (i, &up) in online.iter().enumerate() {
            if up {
                let core = ctx.server.core(i);
                self.cache.fp[i] = job_set_fingerprint(core.jobs());
                self.cache.speed_factor[i] = core.speed_factor();
                self.cache.dirty[i] = false;
            } else {
                // Offline cores replan on recovery (also forced by the
                // online-set change, but kept explicit).
                self.cache.dirty[i] = true;
            }
        }
        self.cache.last_online.clone_from(&online);
        self.cache.last_budget_factor = ctx.budget_factor;
        self.cache.last_use_wf = Some(use_wf);
        self.cache.primed = true;

        if Telemetry::is_enabled() {
            self.gauges
                .get_or_insert_with(ReplanGauges::new)
                .publish(&self.stats);
        }

        self.scratch.online = online;
        self.scratch.demands = demands;
        self.scratch.online_idx = online_idx;
        self.scratch.caps = caps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ge_quality::{ExpConcave, QualityLedger};
    use ge_server::Server;
    use ge_simcore::SimTime;
    use ge_workload::{Job, JobId};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn cfg() -> SimConfig {
        SimConfig {
            cores: 2,
            budget_w: 40.0, // 20 W / core = 2 GHz equal share
            ..SimConfig::paper_default()
        }
    }

    fn make_server(c: &SimConfig) -> Server {
        Server::new(
            c.cores,
            Box::new(PolynomialPower::new(c.power_a, c.power_beta)),
            c.budget_w,
            c.units_per_ghz_sec,
        )
    }

    fn ctx_parts(c: &SimConfig) -> (Server, Vec<Job>, QualityLedger, ExpConcave) {
        (
            make_server(c),
            Vec::new(),
            QualityLedger::cumulative(),
            ExpConcave::new(c.quality_c, c.quality_xmax),
        )
    }

    fn job(id: u64, release: f64, deadline: f64, demand: f64) -> Job {
        Job::new(JobId(id), t(release), t(deadline), demand)
    }

    #[test]
    fn assigns_queue_via_crr() {
        let c = cfg();
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        queue.push(job(0, 0.0, 0.15, 200.0));
        queue.push(job(1, 0.0, 0.15, 200.0));
        queue.push(job(2, 0.0, 0.15, 200.0));
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 10.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        ge.on_schedule(&mut ctx);
        assert!(queue.is_empty());
        assert_eq!(server.core(0).jobs().len(), 2); // C-RR: 0,1,0
        assert_eq!(server.core(1).jobs().len(), 1);
    }

    #[test]
    fn aes_mode_cuts_targets() {
        let c = cfg();
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        queue.push(job(0, 0.0, 0.15, 900.0));
        queue.push(job(1, 0.0, 0.15, 800.0));
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 10.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        ge.on_schedule(&mut ctx);
        assert_eq!(ge.current_mode(), MODE_AES);
        // Each core got one long job; AES must have cut it below full.
        for i in 0..2 {
            for j in server.core(i).jobs() {
                assert!(
                    j.target_demand < j.full_demand - 1e-6,
                    "job {} not cut: target {} vs full {}",
                    j.id,
                    j.target_demand,
                    j.full_demand
                );
            }
        }
    }

    #[test]
    fn be_never_cuts() {
        let c = cfg();
        let mut be = GeScheduler::new(&c, GeOptions::best_effort());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        // 900 units in 450 ms needs 2 GHz — within the core's power reach,
        // so no Quality-OPT second cut can bind.
        queue.push(job(0, 0.0, 0.45, 900.0));
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 500.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        be.on_schedule(&mut ctx);
        assert_eq!(be.current_mode(), MODE_BQ);
        let j = &server.core(0).jobs()[0];
        assert!((j.target_demand - j.full_demand).abs() < 1e-9);
    }

    #[test]
    fn compensation_switches_to_bq_and_back() {
        let c = cfg();
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, mut ledger, f) = ctx_parts(&c);
        // Degrade monitored quality below Q_GE = 0.9.
        ledger.record(0.5, 1.0);
        {
            let mut ctx = ScheduleCtx {
                now: t(0.0),
                server: &mut server,
                queue: &mut queue,
                ledger: &ledger,
                quality_fn: &f,
                load_estimate_rps: 10.0,
                budget_factor: 1.0,
                orphans: &mut Vec::new(),
                shed: &mut Vec::new(),
                sink: &mut ge_trace::NullSink,
            };
            ge.on_schedule(&mut ctx);
        }
        assert_eq!(ge.current_mode(), MODE_BQ, "quality 0.5 must force BQ");
        // Recover the quality; next epoch returns to AES.
        for _ in 0..100 {
            ledger.record(1.0, 1.0);
        }
        {
            let mut ctx = ScheduleCtx {
                now: t(0.5),
                server: &mut server,
                queue: &mut queue,
                ledger: &ledger,
                quality_fn: &f,
                load_estimate_rps: 10.0,
                budget_factor: 1.0,
                orphans: &mut Vec::new(),
                shed: &mut Vec::new(),
                sink: &mut ge_trace::NullSink,
            };
            ge.on_schedule(&mut ctx);
        }
        assert_eq!(ge.current_mode(), MODE_AES);
    }

    #[test]
    fn no_comp_stays_in_aes() {
        let c = cfg();
        let mut ge = GeScheduler::new(
            &c,
            GeOptions {
                compensation: false,
                ..GeOptions::paper()
            },
        );
        let (mut server, mut queue, mut ledger, f) = ctx_parts(&c);
        ledger.record(0.1, 1.0); // terrible quality
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 10.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        ge.on_schedule(&mut ctx);
        assert_eq!(ge.current_mode(), MODE_AES);
    }

    #[test]
    fn hybrid_uses_es_below_critical_wf_above() {
        let c = cfg();
        // Asymmetric load: core 0 heavy, core 1 empty.
        let heavy = job(0, 0.0, 0.15, 900.0);

        // Light load ⇒ ES ⇒ both cores capped at H/m = 20 W.
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        queue.push(heavy);
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 10.0, // « critical 154
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        ge.on_schedule(&mut ctx);
        assert!((server.core(0).power_cap() - 20.0).abs() < 1e-9);
        assert!((server.core(1).power_cap() - 20.0).abs() < 1e-9);

        // Heavy load ⇒ WF ⇒ the loaded core gets (almost) everything it
        // demands; the idle core keeps only surplus headroom.
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        queue.push(job(0, 0.0, 0.15, 900.0));
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 500.0, // » critical
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        ge.on_schedule(&mut ctx);
        assert!(
            server.core(0).power_cap() > 20.0,
            "WF should feed the loaded core, cap = {}",
            server.core(0).power_cap()
        );
    }

    #[test]
    fn insufficient_cap_triggers_second_cut() {
        let c = cfg();
        // BE (no LF cut) with a brutal speed cap: targets must be reduced
        // by Quality-OPT to what the cap can retire.
        let mut be = GeScheduler::new(
            &c,
            GeOptions {
                speed_cap_ghz: Some(1.0),
                ..GeOptions::best_effort()
            },
        );
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        // 450 units in 150 ms needs 3 GHz; the cap allows 1 GHz × 0.15 s
        // = 150 units.
        queue.push(job(0, 0.0, 0.15, 450.0));
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 500.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        be.on_schedule(&mut ctx);
        let j = &server.core(0).jobs()[0];
        assert!(
            (j.target_demand - 150.0).abs() < 1e-6,
            "expected 150, got {}",
            j.target_demand
        );
        // Installed plan never exceeds the cap.
        assert!(server.core(0).profile().max_speed() <= 1.0 + 1e-9);
    }

    #[test]
    fn oq_cuts_to_higher_target_than_ge() {
        let c = cfg();
        let run = |opts: GeOptions| {
            let mut s = GeScheduler::new(&c, opts);
            let (mut server, mut queue, ledger, f) = ctx_parts(&c);
            // Wide window so the LF cut, not the power cap, sets targets.
            queue.push(job(0, 0.0, 0.45, 900.0));
            let mut ctx = ScheduleCtx {
                now: t(0.0),
                server: &mut server,
                queue: &mut queue,
                ledger: &ledger,
                quality_fn: &f,
                load_estimate_rps: 10.0,
                budget_factor: 1.0,
                orphans: &mut Vec::new(),
                shed: &mut Vec::new(),
                sink: &mut ge_trace::NullSink,
            };
            s.on_schedule(&mut ctx);
            server.core(0).jobs()[0].target_demand
        };
        let ge_target = run(GeOptions::paper());
        let oq_target = run(GeOptions {
            label: "OQ",
            target_quality_offset: 0.02,
            compensation: false,
            ..GeOptions::paper()
        });
        assert!(
            oq_target > ge_target,
            "OQ ({oq_target}) must retain more work than GE ({ge_target})"
        );
    }

    #[test]
    fn discrete_mode_installs_ladder_speeds() {
        let mut c = cfg();
        c.discrete_speeds = Some(ge_power::DiscreteSpeedSet::paper_default());
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        queue.push(job(0, 0.0, 0.15, 290.0));
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 10.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        ge.on_schedule(&mut ctx);
        let speed = server.core(0).profile().max_speed();
        assert!(
            (speed / 0.5 - (speed / 0.5).round()).abs() < 1e-9,
            "speed {speed} is not on the 0.5 GHz ladder"
        );
    }

    #[test]
    fn targets_never_below_processed() {
        let c = cfg();
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        // Pre-plant a job that already processed 600 of 900 units.
        server.core_mut(0).assign(&job(0, 0.0, 0.15, 900.0));
        server.core_mut(0).jobs_mut()[0].processed = 600.0;
        let mut ctx = ScheduleCtx {
            now: t(0.01),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 10.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        ge.on_schedule(&mut ctx);
        let j = &server.core(0).jobs()[0];
        assert!(j.target_demand >= 600.0 - 1e-9);
        assert!(j.target_demand <= 900.0 + 1e-9);
    }

    #[test]
    fn epoch_counter_advances() {
        let c = cfg();
        let mut ge = GeScheduler::new(&c, GeOptions::paper());
        let (mut server, mut queue, ledger, f) = ctx_parts(&c);
        for e in 0..3 {
            let mut ctx = ScheduleCtx {
                now: t(e as f64 * 0.5),
                server: &mut server,
                queue: &mut queue,
                ledger: &ledger,
                quality_fn: &f,
                load_estimate_rps: 10.0,
                budget_factor: 1.0,
                orphans: &mut Vec::new(),
                shed: &mut Vec::new(),
                sink: &mut ge_trace::NullSink,
            };
            ge.on_schedule(&mut ctx);
        }
        assert_eq!(ge.epochs(), 3);
    }
}
