//! One fleet shard: a single-server [`Engine`](crate::driver::Engine)
//! wrapped for external job injection and whole-server fault control.
//!
//! The fleet router (`ge-fleet`) owns N of these. Each shard is exactly
//! the engine every single-server run uses — same event loop, same
//! accounting, same checkpointable state — so per-shard behaviour needs no
//! re-validation. The wrapper adds only what a router needs:
//!
//! * [`ShardEngine::inject_job`] — feed an arrival decided by the router
//!   (shards are built over an *empty* trace; the router is the sole
//!   source of work),
//! * [`ShardEngine::advance_to`] — lockstep time advance. The engine's
//!   segmented-advance invariant (proven by the resume suite) guarantees
//!   that advancing in router-event-sized segments observes the same
//!   `(now, event)` sequence as one straight run, which is what makes the
//!   whole fleet bit-reproducible,
//! * [`ShardEngine::crash`] / [`ShardEngine::recover`] — whole-server
//!   loss and rejoin. A crash preempts running work onto the orphan list
//!   (partial credit, exactly like a core fault) and hands the
//!   queued-unstarted jobs back to the router for failover,
//! * [`ShardEngine::set_budget_factor`] — the global partitioner's knob:
//!   the shard's effective budget is `factor ×` its nominal `H_i`.
//!
//! Per-shard fault schedules may carry core outages, throttles, and DVFS
//! windows, but not surges or demand noise (surge jobs would collide with
//! the router's global job ids); outage windows should not overlap a
//! whole-server crash of the same shard.

use crate::config::SimConfig;
use crate::driver::{Engine, Ev, PRIO_ARRIVAL};
use crate::policy::{Algorithm, Scheduler};
use crate::result::RunResult;
use crate::resume::{decode_engine_state, encode_engine_state, shard_input_digest};
use ge_faults::FaultSchedule;
use ge_quality::QualityFunction;
use ge_recover::checkpoint::{seal, unseal};
use ge_recover::{CheckpointError, Decoder, Encoder};
use ge_simcore::SimTime;
use ge_trace::{NullSink, TraceSink};
use ge_workload::{Job, JobId, Trace};

/// A shard's final measurements plus the ledger sums the fleet needs to
/// aggregate quality across shards (fleet quality is a ratio of summed
/// achieved over summed full values, not a mean of per-shard ratios).
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The ordinary single-server run measurements.
    pub result: RunResult,
    /// `Σ f(c_j)` over every job recorded by this shard's ledger.
    pub achieved_sum: f64,
    /// `Σ f(p_j)` over every job recorded by this shard's ledger.
    pub full_sum: f64,
}

/// A single server of a fleet: one engine plus its scheduler, driven by
/// the router in lockstep with its siblings.
pub struct ShardEngine {
    engine: Engine,
    sched: Box<dyn Scheduler>,
    crashed: bool,
}

impl ShardEngine {
    /// Builds a shard over an empty workload. `cfg.horizon` must already
    /// be the fleet-wide horizon (covering every job deadline the router
    /// may inject).
    ///
    /// # Panics
    /// Panics if `cfg` is invalid or `faults` carries surge windows or
    /// demand noise (both are fleet-level concerns).
    pub fn new(cfg: &SimConfig, algorithm: &Algorithm, faults: Option<&FaultSchedule>) -> Self {
        if let Some(fs) = faults {
            assert!(
                fs.surges().is_empty() && fs.demand_noise() == 0.0,
                "per-shard fault schedules must not carry surges or demand noise"
            );
        }
        let sched = algorithm.build(cfg);
        let empty = Trace::new(Vec::new());
        let engine = Engine::new(cfg, &empty, faults, sched.current_mode());
        ShardEngine {
            engine,
            sched,
            crashed: false,
        }
    }

    /// Hands the shard a job at simulation time `at` (the router's
    /// dispatch instant). The job keeps its original release time for
    /// latency accounting, so retried or failed-over jobs pay their
    /// routing delay in the latency histogram.
    ///
    /// # Panics
    /// Panics if `at` precedes the shard's current time (the router must
    /// advance the shard first).
    pub fn inject_job(&mut self, job: Job, at: SimTime) {
        let idx = job.id.index();
        if self.engine.releases.len() <= idx {
            self.engine.releases.resize(idx + 1, SimTime::ZERO);
        }
        self.engine.releases[idx] = job.release;
        self.engine.all_jobs.push(job);
        let slot = self.engine.all_jobs.len() - 1;
        self.engine
            .sim
            .schedule(at, PRIO_ARRIVAL, Ev::Arrival(slot));
    }

    /// Runs the shard's event loop up to `until` (inclusive). Events are
    /// recorded nowhere — shard-internal traces would interleave
    /// non-monotonically across the fleet; the router emits the fleet
    /// trace instead.
    pub fn advance_to(&mut self, until: SimTime) {
        self.engine
            .advance(until, self.sched.as_mut(), &mut NullSink);
    }

    /// [`ShardEngine::advance_to`], but recording engine events
    /// (`JobFinish`, `JobShed`, …) into `sink`. A single-shard owner like
    /// the serving front end uses this to observe per-job outcomes; the
    /// fleet router keeps the sinkless variant.
    pub fn advance_to_with(&mut self, until: SimTime, sink: &mut dyn TraceSink) {
        self.engine.advance(until, self.sched.as_mut(), sink);
    }

    /// Current simulated time of the shard's event loop.
    pub fn now(&self) -> SimTime {
        self.engine.sim.now()
    }

    /// The ledger's running quality ratio `Σf(c_j) / Σf(p_j)` over every
    /// job recorded so far (1.0 while the ledger is empty).
    pub fn ledger_quality(&self) -> f64 {
        self.engine.ledger.quality()
    }

    /// Ledger counters: `(recorded, discarded, completed_fully)`.
    pub fn ledger_counts(&self) -> (u64, u64, u64) {
        self.engine.ledger.counters()
    }

    /// Whole-server crash: every core fails. Jobs with work already done
    /// are preempted onto the orphan list for partial credit (exactly as
    /// under a core fault); every queued-unstarted job — whether still in
    /// the shard queue or assigned to a core but untouched — is handed
    /// back, in id order, for failover. The shard stays in the fleet's
    /// accounting: its energy spent and its orphans' fates still count.
    pub fn crash(&mut self) -> Vec<Job> {
        self.crashed = true;
        let mut failed_over: Vec<Job> = std::mem::take(&mut self.engine.queue);
        for core in 0..self.engine.cfg.cores {
            for cj in self.engine.server.fail_core(core) {
                if cj.processed <= 0.0 {
                    failed_over.push(
                        Job::new(cj.id, cj.release, cj.deadline, cj.full_demand)
                            .with_estimate(cj.estimate),
                    );
                } else {
                    self.engine.orphans.push(cj);
                }
            }
        }
        failed_over.sort_by_key(|j| j.id.index());
        failed_over
    }

    /// The server rejoins the fleet, empty and at nominal speed. Cores the
    /// shard's own fault schedule currently holds offline stay offline.
    pub fn recover(&mut self) {
        self.crashed = false;
        for core in 0..self.engine.cfg.cores {
            let scheduled_online = self
                .engine
                .injector
                .as_ref()
                .map_or(true, |inj| inj.online(core));
            if scheduled_online {
                self.engine.server.recover_core(core);
            }
        }
    }

    /// Whether the router currently considers this server dead.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Sets the partitioner's budget multiplier: the shard's effective
    /// power budget becomes `factor ×` its nominal `H_i`. The scheduler
    /// observes the change at its next trigger and replans.
    pub fn set_budget_factor(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "budget factor must be finite and non-negative, got {factor}"
        );
        self.engine.budget_factor = factor;
    }

    /// Sets the delivered-over-requested speed ratio on every core (a
    /// degraded / thermally-capped server).
    pub fn set_speed_factor_all(&mut self, factor: f64) {
        for core in 0..self.engine.cfg.cores {
            self.engine.server.set_core_speed_factor(core, factor);
        }
    }

    /// Jobs queued but not yet started on a core.
    pub fn queue_len(&self) -> usize {
        self.engine.queue.len()
    }

    /// Total unfinished demand on the shard (queued + on-core backlog),
    /// in service units — the router's load signal.
    pub fn load_units(&self) -> f64 {
        let queued: f64 = self.engine.queue.iter().map(|j| j.demand).sum();
        self.engine.server.total_backlog_units() + queued
    }

    /// Cores currently online.
    pub fn online_cores(&self) -> usize {
        self.engine.server.online_count()
    }

    /// Energy consumed so far (joules).
    pub fn energy_j(&self) -> f64 {
        self.engine.server.total_energy()
    }

    /// Jobs this shard's scheduler shed under its `q_min` floor.
    pub fn jobs_shed(&self) -> u64 {
        self.engine.jobs_shed
    }

    /// The quality value `f(demand)` under the shard's quality function
    /// (identical across shards; exposed so the router can account shed
    /// jobs in the fleet-wide quality ratio).
    pub fn quality_value(&self, demand: f64) -> f64 {
        self.engine.f.value(demand)
    }

    /// The fleet-wide horizon this shard runs to.
    pub fn horizon(&self) -> SimTime {
        self.engine.horizon
    }

    /// Closes the shard's books at the horizon and returns its
    /// measurements plus ledger sums.
    pub fn finalize(self) -> ShardOutcome {
        self.finalize_with(&mut NullSink)
    }

    /// [`ShardEngine::finalize`], but recording the closing `JobFinish`
    /// events (leftover work discarded at the books' close) into `sink`,
    /// so an owner tracking per-job outcomes sees every job reach a
    /// terminal state.
    pub fn finalize_with(self, sink: &mut dyn TraceSink) -> ShardOutcome {
        let ShardEngine {
            mut engine,
            mut sched,
            ..
        } = self;
        engine.close_books(sink);
        let achieved_sum = engine.ledger.achieved_sum();
        let full_sum = engine.ledger.full_sum();
        let result = engine.finalize(sched.as_mut(), sink);
        ShardOutcome {
            result,
            achieved_sum,
            full_sum,
        }
    }

    /// Serializes the complete shard state — injected job set included —
    /// into a sealed checkpoint. Unlike a batch-run checkpoint (whose job
    /// set is deterministic from the workload inputs and therefore pinned
    /// by the digest, not stored), a shard's jobs arrive online, so the
    /// snapshot carries them; the seal digest pins configuration,
    /// algorithm, and fault stream.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_usize(self.engine.all_jobs.len());
        for j in &self.engine.all_jobs {
            enc.put_u64(j.id.0);
            enc.put_f64(j.release.as_secs());
            enc.put_f64(j.deadline.as_secs());
            enc.put_f64(j.demand);
            enc.put_f64(j.estimate);
        }
        enc.put_usize(self.engine.releases.len());
        for &t in &self.engine.releases {
            enc.put_f64(t.as_secs());
        }
        enc.put_bool(self.crashed);
        enc.put_bytes(&encode_engine_state(&self.engine, self.sched.as_ref()));
        let digest = shard_input_digest(&self.engine.cfg, self.sched.name(), &self.engine);
        seal(digest, &enc.into_bytes())
    }

    /// Reconstructs a shard bit-exactly from [`ShardEngine::snapshot`]
    /// bytes, given the same `(cfg, algorithm, faults)` the original was
    /// built with; a mismatch is rejected via the sealed input digest.
    pub fn restore(
        cfg: &SimConfig,
        algorithm: &Algorithm,
        faults: Option<&FaultSchedule>,
        bytes: &[u8],
    ) -> Result<Self, CheckpointError> {
        let mut shard = ShardEngine::new(cfg, algorithm, faults);
        let digest = shard_input_digest(&shard.engine.cfg, shard.sched.name(), &shard.engine);
        let (stored_digest, payload) = unseal(bytes)?;
        if stored_digest != digest {
            return Err(CheckpointError::DigestMismatch {
                checkpoint: stored_digest,
                current: digest,
            });
        }
        let mut dec = Decoder::new(payload);
        let n_jobs = dec.get_len("shard.jobs")?;
        let mut jobs = Vec::with_capacity(n_jobs);
        for _ in 0..n_jobs {
            let id = JobId(dec.get_u64("shard.job.id")?);
            let release = SimTime::from_secs(dec.get_f64("shard.job.release")?);
            let deadline = SimTime::from_secs(dec.get_f64("shard.job.deadline")?);
            let demand = dec.get_f64("shard.job.demand")?;
            let estimate = dec.get_f64("shard.job.estimate")?;
            if !(demand.is_finite() && demand > 0.0 && estimate.is_finite() && estimate > 0.0) {
                return Err(CheckpointError::Invalid("malformed shard job demand"));
            }
            jobs.push(Job {
                id,
                release,
                deadline,
                demand,
                estimate,
            });
        }
        shard.engine.all_jobs = jobs;
        let n_releases = dec.get_len("shard.releases")?;
        let mut releases = Vec::with_capacity(n_releases);
        for _ in 0..n_releases {
            releases.push(SimTime::from_secs(dec.get_f64("shard.release")?));
        }
        shard.engine.releases = releases;
        shard.crashed = dec.get_bool("shard.crashed")?;
        let engine_payload = dec.get_bytes("shard.engine")?;
        decode_engine_state(&mut shard.engine, shard.sched.as_mut(), &engine_payload)?;
        dec.finish("shard")?;
        Ok(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ge_simcore::SimDuration;
    use ge_workload::JobId;

    fn shard_cfg() -> SimConfig {
        SimConfig {
            cores: 4,
            budget_w: 80.0,
            horizon: SimTime::from_secs(10.0),
            critical_load_rps: 154.0 / 4.0,
            ..SimConfig::paper_default()
        }
    }

    fn job(id: u64, release_s: f64, demand: f64) -> Job {
        let r = SimTime::from_secs(release_s);
        Job::new(JobId(id), r, r + SimDuration::from_millis(150.0), demand)
    }

    #[test]
    fn injected_jobs_run_and_are_accounted() {
        let cfg = shard_cfg();
        let mut shard = ShardEngine::new(&cfg, &Algorithm::Ge, None);
        for i in 0..20 {
            shard.inject_job(
                job(i, 0.1 * i as f64, 400.0),
                SimTime::from_secs(0.1 * i as f64),
            );
        }
        shard.advance_to(shard.horizon());
        let out = shard.finalize();
        assert_eq!(out.result.jobs_finished, 20);
        assert!(out.result.quality > 0.5, "{}", out.result.quality);
        assert!(out.result.energy_j > 0.0);
        assert!(out.full_sum > 0.0 && out.achieved_sum <= out.full_sum + 1e-12);
    }

    #[test]
    fn segmented_advance_matches_straight_run() {
        let cfg = shard_cfg();
        let build = || {
            let mut s = ShardEngine::new(&cfg, &Algorithm::Ge, None);
            for i in 0..30 {
                s.inject_job(
                    job(i, 0.05 * i as f64, 300.0 + 20.0 * i as f64),
                    SimTime::from_secs(0.05 * i as f64),
                );
            }
            s
        };
        let mut a = build();
        a.advance_to(a.horizon());
        let ra = a.finalize();
        let mut b = build();
        let mut t = 0.0f64;
        while t < 10.0 {
            t += 0.37;
            b.advance_to(SimTime::from_secs(t.min(10.0)));
        }
        b.advance_to(b.horizon());
        let rb = b.finalize();
        assert_eq!(ra.result.quality.to_bits(), rb.result.quality.to_bits());
        assert_eq!(ra.result.energy_j.to_bits(), rb.result.energy_j.to_bits());
        assert_eq!(ra.result.jobs_finished, rb.result.jobs_finished);
    }

    #[test]
    fn crash_returns_queue_recover_restores_capacity() {
        let cfg = shard_cfg();
        let mut shard = ShardEngine::new(&cfg, &Algorithm::Ge, None);
        // Enough simultaneous work that some of it is still queued at the
        // crash instant.
        for i in 0..40 {
            shard.inject_job(job(i, 1.0, 900.0), SimTime::from_secs(1.0));
        }
        shard.advance_to(SimTime::from_secs(1.0));
        let failed_over = shard.crash();
        assert!(shard.is_crashed());
        assert_eq!(shard.online_cores(), 0);
        // Cores are occupied by at most one job each; the rest fail over.
        assert!(failed_over.len() >= 40 - cfg.cores, "{}", failed_over.len());
        // A dead shard is inert but advanceable.
        shard.advance_to(SimTime::from_secs(3.0));
        shard.recover();
        assert_eq!(shard.online_cores(), cfg.cores);
        // The recovered shard accepts and completes new work.
        shard.inject_job(job(100, 3.0, 500.0), SimTime::from_secs(3.0));
        shard.advance_to(shard.horizon());
        let out = shard.finalize();
        assert!(out.result.energy_j > 0.0);
        // Conservation: every job not failed over is in the ledger.
        assert_eq!(
            out.result.jobs_finished,
            41 - failed_over.len() as u64,
            "ledger covers exactly the jobs the shard kept"
        );
    }

    #[test]
    fn budget_factor_scales_capacity() {
        let cfg = shard_cfg();
        let run = |factor: f64| {
            let mut s = ShardEngine::new(&cfg, &Algorithm::Ge, None);
            s.set_budget_factor(factor);
            for i in 0..60 {
                s.inject_job(
                    job(i, 0.02 * i as f64, 900.0),
                    SimTime::from_secs(0.02 * i as f64),
                );
            }
            s.advance_to(s.horizon());
            s.finalize()
        };
        let starved = run(0.4);
        let nominal = run(1.0);
        let boosted = run(1.5);
        assert!(
            starved.result.quality < nominal.result.quality,
            "{} !< {}",
            starved.result.quality,
            nominal.result.quality
        );
        assert!(boosted.result.quality >= nominal.result.quality - 1e-9);
        assert!(starved.result.energy_j < boosted.result.energy_j);
    }
}
