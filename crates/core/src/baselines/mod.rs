//! Baseline scheduling algorithms from the paper's evaluation (§IV-A-1,
//! §IV-F).
//!
//! The best-effort family (BE, OQ, BE-P, BE-S) shares GE's machinery and
//! is produced by [`crate::ge::GeScheduler`] with the appropriate
//! [`crate::ge::GeOptions`] — the paper defines them as policy variations,
//! not separate algorithms. The four single-job queue disciplines (FCFS,
//! FDFS, LJF, SJF) are genuinely different and live in
//! [`queue_policies`].

pub mod queue_policies;

pub use queue_policies::{QueuePolicy, QueueScheduler};
