//! The single-job queue disciplines: FCFS, FDFS, LJF, SJF.
//!
//! Paper §IV-A-1: "The other four algorithms are triggered whenever a core
//! becomes idle, and a job in the waiting queue (with the earliest release
//! time in FCFS, the earliest deadline in FDFS, the largest service demand
//! in LJF, and the smallest service demand in SJF) is assigned to the
//! core. The default power distribution policy for all four algorithms is
//! ES. The job is executed with the slowest possible speed to finish
//! before deadline … if the power supplied to the core is not enough to
//! complete the job, the job will be executed with the highest available
//! speed till the deadline."

use ge_power::{PolynomialPower, PowerModel, SpeedProfile};
use ge_trace::TraceEvent;

use crate::config::SimConfig;
use crate::policy::{ScheduleCtx, Scheduler, TriggerSet};

/// Which job the idle core takes from the waiting queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Earliest release time first.
    Fcfs,
    /// Earliest deadline first.
    Fdfs,
    /// Largest service demand first.
    Ljf,
    /// Smallest service demand first.
    Sjf,
}

impl QueuePolicy {
    /// Label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            QueuePolicy::Fcfs => "FCFS",
            QueuePolicy::Fdfs => "FDFS",
            QueuePolicy::Ljf => "LJF",
            QueuePolicy::Sjf => "SJF",
        }
    }

    /// Index of the chosen job in `queue` (`None` when empty).
    fn pick(self, queue: &[ge_workload::Job]) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        let idx = match self {
            // The driver keeps the queue in arrival order.
            QueuePolicy::Fcfs => 0,
            QueuePolicy::Fdfs => queue
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1.deadline
                        .total_cmp(&b.1.deadline)
                        .then(a.1.id.cmp(&b.1.id))
                })
                .map(|(i, _)| i)
                .expect("non-empty"),
            // `total_cmp`, not `partial_cmp().expect(..)`: a NaN demand
            // (corrupt trace, bad estimator) must not panic the scheduler
            // mid-run. Under the IEEE total order NaN sorts above every
            // number, giving a deterministic (if arbitrary) pick.
            QueuePolicy::Ljf => queue
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.demand.total_cmp(&b.1.demand).then(b.1.id.cmp(&a.1.id)))
                .map(|(i, _)| i)
                .expect("non-empty"),
            QueuePolicy::Sjf => queue
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.demand.total_cmp(&b.1.demand).then(a.1.id.cmp(&b.1.id)))
                .map(|(i, _)| i)
                .expect("non-empty"),
        };
        Some(idx)
    }
}

/// A scheduler dispatching one queued job per idle core under ES power.
pub struct QueueScheduler {
    policy: QueuePolicy,
    share_w: f64,
    model: PolynomialPower,
    units_per_ghz_sec: f64,
    epochs: u64,
    // Per-epoch scratch, owned to keep the replan path allocation-free.
    idle_scratch: Vec<usize>,
    orphan_scratch: Vec<ge_server::CoreJob>,
}

impl QueueScheduler {
    /// Creates the scheduler for the given platform configuration.
    pub fn new(cfg: &SimConfig, policy: QueuePolicy) -> Self {
        cfg.validate();
        QueueScheduler {
            policy,
            share_w: cfg.equal_share_w(),
            model: PolynomialPower::new(cfg.power_a, cfg.power_beta),
            units_per_ghz_sec: cfg.units_per_ghz_sec,
            epochs: 0,
            idle_scratch: Vec::new(),
            orphan_scratch: Vec::new(),
        }
    }

    /// Number of epochs run.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }
}

impl Scheduler for QueueScheduler {
    fn name(&self) -> &str {
        self.policy.label()
    }

    fn triggers(&self) -> TriggerSet {
        TriggerSet::idle_only()
    }

    // The only cross-epoch state is the epoch counter; both scratch
    // vectors are cleared and refilled from the `ScheduleCtx` each epoch.
    fn encode_state(&self, enc: &mut ge_recover::Encoder) {
        enc.put_u64(self.epochs);
    }

    fn restore_state(
        &mut self,
        dec: &mut ge_recover::Decoder<'_>,
    ) -> Result<(), ge_recover::CodecError> {
        self.epochs = dec.get_u64("queue.epochs")?;
        Ok(())
    }

    fn on_schedule(&mut self, ctx: &mut ScheduleCtx<'_>) {
        let _span = ge_telemetry::SpanGuard::enter_sampled("queue_dispatch");
        self.epochs += 1;
        // Under a throttled budget the ES share shrinks with it.
        let share_w = self.share_w * ctx.budget_factor;
        let s_cap = self.model.speed_for_power(share_w);

        // Idle online cores, collected once: every action below only ever
        // makes cores busy, so the set cannot grow mid-epoch. Consumed in
        // ascending index order (the same order the old per-iteration
        // rescan would have found them), via a cursor — a core is consumed
        // only when a job actually lands on it.
        let mut idle = std::mem::take(&mut self.idle_scratch);
        idle.clear();
        idle.extend(
            (0..ctx.server.core_count())
                .filter(|&i| ctx.server.core(i).is_idle() && ctx.server.core(i).is_online()),
        );
        let mut next_idle = 0usize;

        // Re-home jobs preempted off failed cores first: each takes an
        // idle online core and resumes toward its remaining estimate at
        // the slowest feasible speed, like any other dispatch. Incoming
        // orphans are swapped into owned scratch so unplaced ones can be
        // pushed straight back in order, allocation-free.
        let mut orphans = std::mem::take(&mut self.orphan_scratch);
        std::mem::swap(ctx.orphans, &mut orphans);
        for job in orphans.drain(..) {
            let window = job.deadline.saturating_since(ctx.now);
            match idle.get(next_idle) {
                Some(&core_idx) if !window.is_negligible() => {
                    next_idle += 1;
                    let needed = job.remaining() / (window.as_secs() * self.units_per_ghz_sec);
                    let speed = needed.min(s_cap);
                    let (id, deadline) = (job.id, job.deadline);
                    let core = ctx.server.core_mut(core_idx);
                    core.adopt(job);
                    core.install_plan(SpeedProfile::constant(ctx.now, deadline, speed), share_w);
                    if ctx.sink.is_enabled() {
                        ctx.sink.record(&TraceEvent::JobAssigned {
                            t: ctx.now.as_secs(),
                            job: id.index() as u64,
                            core: core_idx as u64,
                        });
                    }
                }
                _ => ctx.orphans.push(job),
            }
        }
        self.orphan_scratch = orphans;

        while let Some(&core_idx) = idle.get(next_idle) {
            let Some(job_idx) = self.policy.pick(ctx.queue) else {
                break;
            };
            let job = ctx.queue.remove(job_idx);
            let window = job.deadline.saturating_since(ctx.now);
            if window.is_negligible() {
                // Too late to serve: expired in queue (driver accounting
                // happens via the core reaping it immediately). The idle
                // core is not consumed.
                continue;
            }
            next_idle += 1;
            // Slowest speed that finishes by the deadline (as far as the
            // scheduler's demand estimate knows), capped at what the ES
            // power share sustains.
            let needed = job.estimate / (window.as_secs() * self.units_per_ghz_sec);
            let speed = needed.min(s_cap);
            let core = ctx.server.core_mut(core_idx);
            core.assign(&job);
            // Run from now until the deadline at the chosen speed; the
            // engine stops billing once the job completes.
            let profile = SpeedProfile::constant(ctx.now, job.deadline, speed);
            core.install_plan(profile, share_w);
            if ctx.sink.is_enabled() {
                ctx.sink.record(&TraceEvent::JobAssigned {
                    t: ctx.now.as_secs(),
                    job: job.id.index() as u64,
                    core: core_idx as u64,
                });
                ctx.sink.record(&TraceEvent::SpeedSegment {
                    t: ctx.now.as_secs(),
                    core: core_idx as u64,
                    start_s: ctx.now.as_secs(),
                    end_s: job.deadline.as_secs(),
                    speed_ghz: speed,
                });
            }
        }
        self.idle_scratch = idle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ge_quality::{ExpConcave, QualityLedger};
    use ge_server::Server;
    use ge_simcore::SimTime;
    use ge_workload::{Job, JobId};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn cfg() -> SimConfig {
        SimConfig {
            cores: 2,
            budget_w: 40.0,
            ..SimConfig::paper_default()
        }
    }

    fn job(id: u64, release: f64, deadline: f64, demand: f64) -> Job {
        Job::new(JobId(id), t(release), t(deadline), demand)
    }

    fn run_one_epoch(
        policy: QueuePolicy,
        queue_jobs: Vec<Job>,
        now: f64,
    ) -> (Server, Vec<Job>, QueueScheduler) {
        let c = cfg();
        let mut s = QueueScheduler::new(&c, policy);
        let mut server = Server::new(
            c.cores,
            Box::new(PolynomialPower::new(c.power_a, c.power_beta)),
            c.budget_w,
            c.units_per_ghz_sec,
        );
        let mut queue = queue_jobs;
        let ledger = QualityLedger::cumulative();
        let f = ExpConcave::new(c.quality_c, c.quality_xmax);
        {
            let mut ctx = ScheduleCtx {
                now: t(now),
                server: &mut server,
                queue: &mut queue,
                ledger: &ledger,
                quality_fn: &f,
                load_estimate_rps: 100.0,
                budget_factor: 1.0,
                orphans: &mut Vec::new(),
                shed: &mut Vec::new(),
                sink: &mut ge_trace::NullSink,
            };
            s.on_schedule(&mut ctx);
        }
        (server, queue, s)
    }

    #[test]
    fn fcfs_takes_head_of_queue() {
        let (server, queue, _) = run_one_epoch(
            QueuePolicy::Fcfs,
            vec![
                job(0, 0.00, 0.15, 200.0),
                job(1, 0.01, 0.16, 300.0),
                job(2, 0.02, 0.17, 100.0),
            ],
            0.02,
        );
        // Two idle cores take jobs 0 and 1; job 2 waits.
        assert_eq!(server.core(0).jobs()[0].id, JobId(0));
        assert_eq!(server.core(1).jobs()[0].id, JobId(1));
        assert_eq!(queue.len(), 1);
        assert_eq!(queue[0].id, JobId(2));
    }

    #[test]
    fn fdfs_takes_earliest_deadline() {
        let (server, _, _) = run_one_epoch(
            QueuePolicy::Fdfs,
            vec![
                job(0, 0.0, 0.50, 200.0),
                job(1, 0.0, 0.20, 300.0), // earliest deadline
                job(2, 0.0, 0.30, 100.0),
            ],
            0.0,
        );
        assert_eq!(server.core(0).jobs()[0].id, JobId(1));
        assert_eq!(server.core(1).jobs()[0].id, JobId(2));
    }

    #[test]
    fn ljf_and_sjf_order_by_demand() {
        let jobs = vec![
            job(0, 0.0, 0.15, 200.0),
            job(1, 0.0, 0.15, 900.0), // longest
            job(2, 0.0, 0.15, 130.0), // shortest
        ];
        let (server, _, _) = run_one_epoch(QueuePolicy::Ljf, jobs.clone(), 0.0);
        assert_eq!(server.core(0).jobs()[0].id, JobId(1));
        let (server, _, _) = run_one_epoch(QueuePolicy::Sjf, jobs, 0.0);
        assert_eq!(server.core(0).jobs()[0].id, JobId(2));
    }

    #[test]
    fn slowest_feasible_speed_is_used() {
        // 150 units in 150 ms needs exactly 1 GHz (< 2 GHz cap).
        let (server, _, _) = run_one_epoch(QueuePolicy::Fcfs, vec![job(0, 0.0, 0.15, 150.0)], 0.0);
        let speed = server.core(0).profile().max_speed();
        assert!((speed - 1.0).abs() < 1e-9, "expected 1 GHz, got {speed}");
    }

    #[test]
    fn power_starved_job_runs_at_cap() {
        // 600 units in 150 ms needs 4 GHz, but H/m = 20 W caps at 2 GHz.
        let (server, _, _) = run_one_epoch(QueuePolicy::Fcfs, vec![job(0, 0.0, 0.15, 600.0)], 0.0);
        let speed = server.core(0).profile().max_speed();
        assert!(
            (speed - 2.0).abs() < 1e-9,
            "expected cap 2 GHz, got {speed}"
        );
    }

    #[test]
    fn busy_cores_take_nothing() {
        let c = cfg();
        let mut s = QueueScheduler::new(&c, QueuePolicy::Fcfs);
        let mut server = Server::new(
            c.cores,
            Box::new(PolynomialPower::new(c.power_a, c.power_beta)),
            c.budget_w,
            c.units_per_ghz_sec,
        );
        // Occupy both cores.
        server.core_mut(0).assign(&job(10, 0.0, 1.0, 500.0));
        server.core_mut(1).assign(&job(11, 0.0, 1.0, 500.0));
        let mut queue = vec![job(0, 0.0, 0.15, 100.0)];
        let ledger = QualityLedger::cumulative();
        let f = ExpConcave::new(c.quality_c, c.quality_xmax);
        let mut ctx = ScheduleCtx {
            now: t(0.0),
            server: &mut server,
            queue: &mut queue,
            ledger: &ledger,
            quality_fn: &f,
            load_estimate_rps: 100.0,
            budget_factor: 1.0,
            orphans: &mut Vec::new(),
            shed: &mut Vec::new(),
            sink: &mut ge_trace::NullSink,
        };
        s.on_schedule(&mut ctx);
        assert_eq!(queue.len(), 1, "no idle core ⇒ job stays queued");
    }

    #[test]
    fn nan_demand_never_panics_the_pick() {
        // Regression: the comparators used partial_cmp().expect("finite
        // demands"), so one NaN demand (corrupt estimator output) aborted
        // the whole simulation. total_cmp ranks NaN above every number,
        // deterministically.
        let mut jobs = vec![
            job(0, 0.0, 0.15, 200.0),
            job(1, 0.0, 0.15, 300.0),
            job(2, 0.0, 0.15, 130.0),
        ];
        jobs[1].demand = f64::NAN;
        assert_eq!(QueuePolicy::Ljf.pick(&jobs), Some(1), "NaN ranks largest");
        assert_eq!(QueuePolicy::Sjf.pick(&jobs), Some(2), "smallest finite");
        // And an all-NaN queue still yields a deterministic choice.
        for j in &mut jobs {
            j.demand = f64::NAN;
        }
        // Both policies tie-break ties toward the lowest job id.
        assert_eq!(QueuePolicy::Ljf.pick(&jobs), Some(0), "id tie-break");
        assert_eq!(QueuePolicy::Sjf.pick(&jobs), Some(0), "id tie-break");
    }

    #[test]
    fn labels() {
        assert_eq!(QueuePolicy::Fcfs.label(), "FCFS");
        assert_eq!(QueuePolicy::Fdfs.label(), "FDFS");
        assert_eq!(QueuePolicy::Ljf.label(), "LJF");
        assert_eq!(QueuePolicy::Sjf.label(), "SJF");
    }
}
