//! Crash-safe checkpoint/resume for full simulation runs.
//!
//! A checkpoint captures **everything** mutable about a run mid-flight —
//! the simulator clock and pending event queue (with sequence numbers, so
//! FIFO tie-breaking survives), every core's resident jobs/plan/clock, the
//! energy meter's Kahan compensation terms, the quality ledger, metric
//! trackers, the driver's queue/cursor/fault state, and the policy's own
//! cross-epoch state via [`Scheduler::encode_state`]. The run environment
//! (workload, fault schedule, configuration) is *not* stored: it is
//! deterministic from the same inputs, which the envelope pins with an
//! input digest so a checkpoint cannot be resumed against the wrong run.
//!
//! The core guarantee is **bit-exactness**: a run resumed from any
//! checkpoint produces the identical [`RunResult`] (floats compared by bit
//! pattern) and the identical decision-trace suffix as the uninterrupted
//! run. This falls out of two properties:
//!
//! 1. `Simulator::run_until` delivers the same `(now, event)` sequence
//!    whether the horizon is reached in one call or many (segment
//!    boundaries never fire handlers), and
//! 2. every float in the snapshot round-trips through its IEEE-754 bit
//!    pattern — including non-obvious state like Kahan compensation terms
//!    and the GE replan cache, which must be restored verbatim rather than
//!    recomputed (a forced full replan agrees with the incremental path
//!    only up to round-off).
//!
//! See DESIGN.md ("Checkpoint format") for the envelope layout and field
//! order.

use std::path::Path;

use ge_power::{PolynomialPower, SpeedProfile, SpeedSegment};
use ge_quality::{LedgerMode, QualityLedger};
use ge_recover::checkpoint::{seal, unseal};
use ge_recover::codec::fnv1a64;
use ge_recover::{write_atomic, CheckpointError, CodecError, Decoder, Encoder};
use ge_server::{Core, CoreJob, Server};
use ge_simcore::{EventEntry, SimDuration, SimTime, Simulator};
use ge_trace::TraceSink;
use ge_workload::{Job, JobId, Trace};

use crate::config::SimConfig;
use crate::driver::{Engine, Ev};
use crate::policy::{Algorithm, Scheduler};
use crate::result::RunResult;

/// How a checkpointed run is driven: where checkpoints go, how often they
/// are taken, and (for crash drills) when to stop early.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint file path (written atomically; always a complete,
    /// self-validating snapshot).
    pub path: std::path::PathBuf,
    /// Take a checkpoint every this many quantum ticks (≥ 1).
    pub every_quanta: u64,
    /// Stop cleanly after writing this many checkpoints, leaving the file
    /// behind — a deterministic stand-in for a mid-run kill.
    pub stop_after: Option<u64>,
}

impl CheckpointPolicy {
    /// A policy checkpointing to `path` every `every_quanta` quanta.
    pub fn new(path: impl Into<std::path::PathBuf>, every_quanta: u64) -> Self {
        assert!(every_quanta >= 1, "checkpoint interval must be >= 1");
        CheckpointPolicy {
            path: path.into(),
            every_quanta,
            stop_after: None,
        }
    }
}

/// The outcome of [`run_resumable`] / [`resume_from`].
#[derive(Debug, Clone)]
pub enum ResumableOutcome {
    /// The run reached its horizon; the final measurements.
    Finished(RunResult),
    /// The run stopped early per [`CheckpointPolicy::stop_after`]; the
    /// checkpoint file holds the state at `at`.
    Stopped {
        /// Simulated time of the last checkpoint taken.
        at: SimTime,
        /// Checkpoints written before stopping.
        checkpoints: u64,
    },
}

/// A simulation that can be checkpointed between quantum-aligned segments
/// and reconstructed bit-exactly from any of those checkpoints.
pub struct ResumableRun {
    cfg: SimConfig,
    digest: u64,
    sched: Box<dyn Scheduler>,
    engine: Engine,
}

impl ResumableRun {
    /// Starts a fresh run at t = 0 (emitting the `RunStart` trace event).
    pub fn start(
        cfg: &SimConfig,
        trace: &Trace,
        algorithm: &Algorithm,
        faults: Option<&ge_faults::FaultSchedule>,
        sink: &mut dyn TraceSink,
    ) -> Self {
        let sched = algorithm.build(cfg);
        let engine = Engine::new(cfg, trace, faults, sched.current_mode());
        let digest = input_digest(cfg, sched.name(), &engine);
        let run = ResumableRun {
            cfg: cfg.clone(),
            digest,
            sched,
            engine,
        };
        run.engine.emit_run_start(run.sched.as_ref(), sink);
        run
    }

    /// Reconstructs a run from checkpoint `bytes`, given the *same*
    /// `(cfg, trace, algorithm, faults)` the original run was started
    /// with; a mismatch is rejected via the input digest. Does not re-emit
    /// `RunStart` — a sink attached across save/resume sees one contiguous
    /// event stream.
    pub fn resume(
        cfg: &SimConfig,
        trace: &Trace,
        algorithm: &Algorithm,
        faults: Option<&ge_faults::FaultSchedule>,
        bytes: &[u8],
    ) -> Result<Self, CheckpointError> {
        let mut sched = algorithm.build(cfg);
        let mut engine = Engine::new(cfg, trace, faults, sched.current_mode());
        let digest = input_digest(cfg, sched.name(), &engine);
        let (stored_digest, payload) = unseal(bytes)?;
        if stored_digest != digest {
            return Err(CheckpointError::DigestMismatch {
                checkpoint: stored_digest,
                current: digest,
            });
        }
        decode_engine_state(&mut engine, sched.as_mut(), payload)?;
        Ok(ResumableRun {
            cfg: cfg.clone(),
            digest,
            sched,
            engine,
        })
    }

    /// [`ResumableRun::resume`] from a checkpoint file.
    pub fn resume_from_path(
        cfg: &SimConfig,
        trace: &Trace,
        algorithm: &Algorithm,
        faults: Option<&ge_faults::FaultSchedule>,
        path: &Path,
    ) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::resume(cfg, trace, algorithm, faults, &bytes)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.sim.now()
    }

    /// The run's horizon (covers every deadline, so ≥ `cfg.horizon`).
    pub fn horizon(&self) -> SimTime {
        self.engine.horizon
    }

    /// The scheduling quantum driving segment boundaries.
    pub fn quantum(&self) -> SimDuration {
        self.cfg.quantum
    }

    /// The digest pinning this run's inputs, stored in every checkpoint.
    pub fn input_digest(&self) -> u64 {
        self.digest
    }

    /// Whether the event loop has reached the horizon.
    pub fn is_done(&self) -> bool {
        self.now().at_or_after(self.horizon())
    }

    /// Advances the event loop to `t` (clamped to the horizon). Segment
    /// boundaries are invisible to the simulation.
    pub fn advance_to(&mut self, t: SimTime, sink: &mut dyn TraceSink) {
        let until = t.min(self.engine.horizon);
        self.engine.advance(until, self.sched.as_mut(), sink);
    }

    /// Serializes the complete run state into a sealed checkpoint.
    pub fn snapshot(&self) -> Vec<u8> {
        let _span = ge_telemetry::SpanGuard::enter("checkpoint_encode");
        let payload = encode_engine_state(&self.engine, self.sched.as_ref());
        seal(self.digest, &payload)
    }

    /// Writes [`ResumableRun::snapshot`] to `path` atomically.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let _span = ge_telemetry::SpanGuard::enter("checkpoint_write");
        let bytes = self.snapshot();
        write_atomic(path, &bytes)?;
        if ge_telemetry::Telemetry::is_enabled() {
            let reg = ge_telemetry::Telemetry::registry();
            reg.counter("ge_checkpoint_bytes_total")
                .add(bytes.len() as u64);
            reg.counter("ge_checkpoints_written_total").inc();
        }
        Ok(())
    }

    /// Runs final accounting at the horizon and returns the measurements.
    /// Call once the run [`is_done`](ResumableRun::is_done) (any remaining
    /// gap is advanced first).
    pub fn finish(mut self, sink: &mut dyn TraceSink) -> RunResult {
        let horizon = self.engine.horizon;
        self.engine.advance(horizon, self.sched.as_mut(), sink);
        self.engine.finalize(self.sched.as_mut(), sink)
    }
}

/// Runs a simulation with periodic checkpoints per `policy`.
pub fn run_resumable(
    cfg: &SimConfig,
    trace: &Trace,
    algorithm: &Algorithm,
    faults: Option<&ge_faults::FaultSchedule>,
    policy: &CheckpointPolicy,
    sink: &mut dyn TraceSink,
) -> Result<ResumableOutcome, CheckpointError> {
    let run = ResumableRun::start(cfg, trace, algorithm, faults, sink);
    drive(run, policy, sink)
}

/// Resumes a checkpointed run from `policy.path` and continues it (with
/// further periodic checkpoints) to completion.
pub fn resume_from(
    cfg: &SimConfig,
    trace: &Trace,
    algorithm: &Algorithm,
    faults: Option<&ge_faults::FaultSchedule>,
    policy: &CheckpointPolicy,
    sink: &mut dyn TraceSink,
) -> Result<ResumableOutcome, CheckpointError> {
    let run = ResumableRun::resume_from_path(cfg, trace, algorithm, faults, &policy.path)?;
    drive(run, policy, sink)
}

fn drive(
    mut run: ResumableRun,
    policy: &CheckpointPolicy,
    sink: &mut dyn TraceSink,
) -> Result<ResumableOutcome, CheckpointError> {
    assert!(policy.every_quanta >= 1, "checkpoint interval must be >= 1");
    let quantum = run.quantum();
    let mut ticks = 0u64;
    let mut written = 0u64;
    while !run.is_done() {
        let next = (run.now() + quantum).min(run.horizon());
        run.advance_to(next, sink);
        ticks += 1;
        if ticks % policy.every_quanta == 0 && !run.is_done() {
            run.save(&policy.path)?;
            written += 1;
            if policy.stop_after.is_some_and(|n| written >= n) {
                return Ok(ResumableOutcome::Stopped {
                    at: run.now(),
                    checkpoints: written,
                });
            }
        }
    }
    Ok(ResumableOutcome::Finished(run.finish(sink)))
}

// ---------------------------------------------------------------------------
// Input digest: pins (cfg, algorithm, derived workload, fault stream).
// ---------------------------------------------------------------------------

fn encode_config_inputs(enc: &mut Encoder, cfg: &SimConfig, algorithm_label: &str) {
    enc.put_str(algorithm_label);
    enc.put_usize(cfg.cores);
    enc.put_f64(cfg.budget_w);
    enc.put_f64(cfg.power_a);
    enc.put_f64(cfg.power_beta);
    enc.put_f64(cfg.quality_c);
    enc.put_f64(cfg.quality_xmax);
    enc.put_f64(cfg.q_ge);
    enc.put_f64(cfg.q_min);
    enc.put_f64(cfg.quantum.as_secs());
    enc.put_usize(cfg.counter_trigger);
    enc.put_f64(cfg.critical_load_rps);
    enc.put_f64(cfg.horizon.as_secs());
    enc.put_f64(cfg.units_per_ghz_sec);
    match &cfg.discrete_speeds {
        None => enc.put_u8(0),
        Some(d) => {
            enc.put_u8(1);
            enc.put_f64_slice(d.steps());
        }
    }
    match cfg.ledger_mode {
        LedgerMode::Cumulative => enc.put_u64(0),
        LedgerMode::SlidingWindow(n) => {
            enc.put_u64(1);
            enc.put_usize(n);
        }
    }
    enc.put_f64(cfg.load_window_secs);
}

fn encode_fault_inputs(enc: &mut Encoder, engine: &Engine) {
    match &engine.injector {
        None => enc.put_u8(0),
        Some(inj) => {
            enc.put_u8(1);
            enc.put_usize(inj.transitions().len());
            for tr in inj.transitions() {
                enc.put_f64(tr.at.as_secs());
                encode_fault_transition(enc, tr.transition);
            }
        }
    }
}

fn input_digest(cfg: &SimConfig, algorithm_label: &str, engine: &Engine) -> u64 {
    let mut enc = Encoder::new();
    encode_config_inputs(&mut enc, cfg, algorithm_label);
    // The derived workload (trace + surge jobs + estimate noise) and the
    // compiled fault-transition stream cover the trace and fault schedule
    // exactly as the run sees them.
    enc.put_usize(engine.all_jobs.len());
    for j in &engine.all_jobs {
        enc.put_u64(j.id.0);
        enc.put_f64(j.release.as_secs());
        enc.put_f64(j.deadline.as_secs());
        enc.put_f64(j.demand);
        enc.put_f64(j.estimate);
    }
    encode_fault_inputs(&mut enc, engine);
    fnv1a64(&enc.into_bytes())
}

/// Digest pinning a shard checkpoint's environment: configuration,
/// algorithm, and fault stream — but *not* the job set, which a serving
/// shard grows online and therefore stores inside the snapshot itself.
pub(crate) fn shard_input_digest(cfg: &SimConfig, algorithm_label: &str, engine: &Engine) -> u64 {
    let mut enc = Encoder::new();
    enc.put_str("shard-v1");
    encode_config_inputs(&mut enc, cfg, algorithm_label);
    encode_fault_inputs(&mut enc, engine);
    fnv1a64(&enc.into_bytes())
}

fn encode_fault_transition(enc: &mut Encoder, tr: ge_faults::FaultTransition) {
    match tr {
        ge_faults::FaultTransition::CoreDown { core } => {
            enc.put_u8(0);
            enc.put_usize(core);
        }
        ge_faults::FaultTransition::CoreUp { core } => {
            enc.put_u8(1);
            enc.put_usize(core);
        }
        ge_faults::FaultTransition::BudgetFactor { factor } => {
            enc.put_u8(2);
            enc.put_f64(factor);
        }
        ge_faults::FaultTransition::SpeedFactor { core, factor } => {
            enc.put_u8(3);
            enc.put_usize(core);
            enc.put_f64(factor);
        }
    }
}

// ---------------------------------------------------------------------------
// Engine state codec. Field order here is the checkpoint format; keep in
// sync with DESIGN.md ("Checkpoint format") and bump CHECKPOINT_VERSION on
// any change.
// ---------------------------------------------------------------------------

fn encode_ev(enc: &mut Encoder, ev: Ev) {
    match ev {
        Ev::Fault(k) => {
            enc.put_u8(0);
            enc.put_usize(k);
        }
        Ev::Arrival(i) => {
            enc.put_u8(1);
            enc.put_usize(i);
        }
        Ev::Quantum => enc.put_u8(2),
        Ev::CoreCheck => enc.put_u8(3),
    }
}

fn decode_ev(dec: &mut Decoder<'_>, jobs: usize, transitions: usize) -> Result<Ev, CodecError> {
    match dec.get_u8("ev.tag")? {
        0 => Ok(Ev::Fault(
            dec.get_usize_bounded("ev.fault", transitions.saturating_sub(1))?,
        )),
        1 => Ok(Ev::Arrival(
            dec.get_usize_bounded("ev.arrival", jobs.saturating_sub(1))?,
        )),
        2 => Ok(Ev::Quantum),
        3 => Ok(Ev::CoreCheck),
        tag => Err(CodecError::BadTag {
            field: "ev.tag",
            tag,
        }),
    }
}

fn encode_profile(enc: &mut Encoder, profile: &SpeedProfile) {
    let segs = profile.segments();
    enc.put_usize(segs.len());
    for s in segs {
        enc.put_f64(s.start.as_secs());
        enc.put_f64(s.end.as_secs());
        enc.put_f64(s.speed_ghz);
    }
}

fn decode_profile(dec: &mut Decoder<'_>) -> Result<SpeedProfile, CodecError> {
    let segs = dec.get_len("profile.segments")?;
    let mut out = Vec::with_capacity(segs.min(64));
    for _ in 0..segs {
        let start = dec.get_f64("profile.start")?;
        let end = dec.get_f64("profile.end")?;
        let speed = dec.get_f64("profile.speed")?;
        if !(start.is_finite() && end.is_finite() && end > start) {
            return Err(CodecError::Invalid {
                field: "profile",
                reason: "malformed speed segment window",
            });
        }
        if !(speed.is_finite() && speed >= 0.0) {
            return Err(CodecError::Invalid {
                field: "profile",
                reason: "malformed segment speed",
            });
        }
        out.push(SpeedSegment::new(
            SimTime::from_secs(start),
            SimTime::from_secs(end),
            speed,
        ));
    }
    if out
        .windows(2)
        .any(|w| w[1].start.as_secs() < w[0].end.as_secs() - 1e-9)
    {
        return Err(CodecError::Invalid {
            field: "profile",
            reason: "overlapping speed segments",
        });
    }
    Ok(SpeedProfile::new(out))
}

fn encode_core_job(enc: &mut Encoder, j: &CoreJob) {
    enc.put_u64(j.id.0);
    enc.put_f64(j.release.as_secs());
    enc.put_f64(j.deadline.as_secs());
    enc.put_f64(j.full_demand);
    enc.put_f64(j.estimate);
    enc.put_f64(j.target_demand);
    enc.put_f64(j.processed);
}

fn decode_core_job(dec: &mut Decoder<'_>) -> Result<CoreJob, CodecError> {
    Ok(CoreJob {
        id: JobId(dec.get_u64("core_job.id")?),
        release: SimTime::from_secs(dec.get_f64("core_job.release")?),
        deadline: SimTime::from_secs(dec.get_f64("core_job.deadline")?),
        full_demand: dec.get_f64("core_job.full_demand")?,
        estimate: dec.get_f64("core_job.estimate")?,
        target_demand: dec.get_f64("core_job.target_demand")?,
        processed: dec.get_f64("core_job.processed")?,
    })
}

pub(crate) fn encode_engine_state(engine: &Engine, sched: &dyn Scheduler) -> Vec<u8> {
    // Shed jobs are drained within each scheduling epoch, so the buffer is
    // always empty at segment boundaries; the format relies on that.
    assert!(
        engine.shed_buf.is_empty(),
        "snapshot taken mid-epoch: shed buffer not drained"
    );
    let mut enc = Encoder::new();

    // 1. Simulator: clock, handled count, event queue with seq numbers.
    enc.put_f64(engine.sim.now().as_secs());
    enc.put_u64(engine.sim.handled_count());
    enc.put_u64(engine.sim.next_seq());
    let pending = engine.sim.snapshot_pending();
    enc.put_usize(pending.len());
    for e in &pending {
        enc.put_f64(e.time.as_secs());
        enc.put_u32(e.priority);
        enc.put_u64(e.seq);
        encode_ev(&mut enc, e.event);
    }

    // 2. Server: per-core state, then the energy meter's Kahan pairs.
    enc.put_usize(engine.server.core_count());
    for i in 0..engine.server.core_count() {
        let core = engine.server.core(i);
        enc.put_usize(core.jobs().len());
        for j in core.jobs() {
            encode_core_job(&mut enc, j);
        }
        encode_profile(&mut enc, core.profile());
        enc.put_f64(core.power_cap());
        enc.put_f64(core.clock().as_secs());
        enc.put_opt_u64(core.running_job().map(|id| id.0));
        enc.put_bool(core.is_online());
        enc.put_f64(core.speed_factor());
    }
    let meter = engine.server.meter_state();
    enc.put_usize(meter.len());
    for (sum, c) in &meter {
        enc.put_f64(*sum);
        enc.put_f64(*c);
    }

    // 3. Quality ledger: sums verbatim (never recomputed from the window).
    enc.put_f64(engine.ledger.achieved_sum());
    enc.put_f64(engine.ledger.full_sum());
    let (count, discarded, completed) = engine.ledger.counters();
    enc.put_u64(count);
    enc.put_u64(discarded);
    enc.put_u64(completed);
    let window = engine.ledger.window_entries();
    enc.put_usize(window.len());
    for (a, f) in &window {
        enc.put_f64(*a);
        enc.put_f64(*f);
    }

    // 4. Metric trackers.
    let (residency, current, since, transitions) = engine.mode_tracker.snapshot_state();
    enc.put_f64_slice(&residency);
    enc.put_usize(current);
    enc.put_f64(since.as_secs());
    enc.put_u64(transitions);
    let (wm, wv, tt, samples) = engine.speed_tracker.snapshot_state();
    enc.put_f64(wm);
    enc.put_f64(wv);
    enc.put_f64(tt);
    enc.put_u64(samples);
    let (bins, upper, count, sum, max_seen, dropped) = engine.latency.snapshot_state();
    enc.put_u64_slice(&bins);
    enc.put_f64(upper);
    enc.put_u64(count);
    enc.put_f64(sum);
    enc.put_f64(max_seen);
    enc.put_u64(dropped);

    // 5. Driver-local state.
    enc.put_usize(engine.queue.len());
    for j in &engine.queue {
        enc.put_u64(j.id.0);
        enc.put_f64(j.release.as_secs());
        enc.put_f64(j.deadline.as_secs());
        enc.put_f64(j.demand);
        enc.put_f64(j.estimate);
    }
    enc.put_usize(engine.arrivals_window.len());
    for &t in &engine.arrivals_window {
        enc.put_f64(t);
    }
    enc.put_u64(engine.epochs);
    enc.put_f64(engine.last_t.as_secs());
    enc.put_f64_slice(&engine.last_speeds);
    enc.put_opt_f64(engine.next_check.map(|t| t.as_secs()));
    enc.put_usize(engine.orphans.len());
    for j in &engine.orphans {
        encode_core_job(&mut enc, j);
    }
    enc.put_f64(engine.budget_factor);
    enc.put_u64(engine.jobs_shed);
    match &engine.injector {
        None => enc.put_u8(0),
        Some(inj) => {
            enc.put_u8(1);
            let (online, speed_factors, budget_factor) = inj.snapshot_state();
            enc.put_bool_slice(&online);
            enc.put_f64_slice(&speed_factors);
            enc.put_f64(budget_factor);
        }
    }

    // 6. Policy state, length-prefixed so its extent is self-describing.
    let mut sub = Encoder::new();
    sched.encode_state(&mut sub);
    enc.put_bytes(&sub.into_bytes());

    enc.into_bytes()
}

pub(crate) fn decode_engine_state(
    engine: &mut Engine,
    sched: &mut dyn Scheduler,
    payload: &[u8],
) -> Result<(), CheckpointError> {
    let cores = engine.cfg.cores;
    let jobs = engine.all_jobs.len();
    let transitions = engine
        .injector
        .as_ref()
        .map_or(0, |inj| inj.transitions().len());
    let mut dec = Decoder::new(payload);

    // 1. Simulator.
    let now = SimTime::from_secs(dec.get_f64("sim.now")?);
    let handled = dec.get_u64("sim.handled")?;
    let next_seq = dec.get_u64("sim.next_seq")?;
    let n_pending = dec.get_len("sim.pending")?;
    let mut pending = Vec::with_capacity(n_pending);
    for _ in 0..n_pending {
        let time = SimTime::from_secs(dec.get_f64("sim.event.time")?);
        let priority = dec.get_u32("sim.event.priority")?;
        let seq = dec.get_u64("sim.event.seq")?;
        let event = decode_ev(&mut dec, jobs, transitions)?;
        pending.push(EventEntry {
            time,
            priority,
            seq,
            event,
        });
    }
    engine.sim = Simulator::restore(now, handled, pending, next_seq);

    // 2. Server.
    let n_cores = dec.get_usize_bounded("server.cores", cores)?;
    if n_cores != cores {
        return Err(CheckpointError::Invalid(
            "checkpoint core count disagrees with configuration",
        ));
    }
    let mut restored_cores = Vec::with_capacity(cores);
    for index in 0..cores {
        let n_jobs = dec.get_len("core.jobs")?;
        let mut core_jobs = Vec::with_capacity(n_jobs);
        for _ in 0..n_jobs {
            core_jobs.push(decode_core_job(&mut dec)?);
        }
        let profile = decode_profile(&mut dec)?;
        let power_cap = dec.get_f64("core.power_cap")?;
        let clock = SimTime::from_secs(dec.get_f64("core.clock")?);
        let running = dec.get_opt_u64("core.running")?.map(JobId);
        let online = dec.get_bool("core.online")?;
        let speed_factor = dec.get_f64("core.speed_factor")?;
        if !(power_cap.is_finite() && power_cap >= 0.0) {
            return Err(CheckpointError::Invalid("malformed core power cap"));
        }
        if !(speed_factor.is_finite() && speed_factor > 0.0) {
            return Err(CheckpointError::Invalid("malformed core speed factor"));
        }
        restored_cores.push(Core::restore(
            index,
            engine.cfg.units_per_ghz_sec,
            core_jobs,
            profile,
            power_cap,
            clock,
            running,
            online,
            speed_factor,
        ));
    }
    let n_meter = dec.get_usize_bounded("server.meter", cores)?;
    if n_meter != cores {
        return Err(CheckpointError::Invalid(
            "energy meter length disagrees with core count",
        ));
    }
    let mut meter = Vec::with_capacity(cores);
    for _ in 0..cores {
        let sum = dec.get_f64("meter.sum")?;
        let c = dec.get_f64("meter.c")?;
        meter.push((sum, c));
    }
    engine.server = Server::restore(
        restored_cores,
        Box::new(PolynomialPower::new(
            engine.cfg.power_a,
            engine.cfg.power_beta,
        )),
        &meter,
        engine.cfg.budget_w,
        engine.cfg.units_per_ghz_sec,
    );

    // 3. Quality ledger.
    let achieved = dec.get_f64("ledger.achieved_sum")?;
    let full = dec.get_f64("ledger.full_sum")?;
    let count = dec.get_u64("ledger.count")?;
    let discarded = dec.get_u64("ledger.discarded")?;
    let completed = dec.get_u64("ledger.completed")?;
    let n_window = dec.get_len("ledger.window")?;
    let mut window = Vec::with_capacity(n_window);
    for _ in 0..n_window {
        let a = dec.get_f64("ledger.window.achieved")?;
        let f = dec.get_f64("ledger.window.full")?;
        window.push((a, f));
    }
    engine.ledger = QualityLedger::restore(
        engine.cfg.ledger_mode,
        achieved,
        full,
        (count, discarded, completed),
        window,
    );

    // 4. Metric trackers.
    let residency = dec.get_f64_vec("mode.residency")?;
    let current = dec.get_usize_bounded("mode.current", residency.len().saturating_sub(1))?;
    if residency.is_empty() {
        return Err(CheckpointError::Invalid("empty mode residency vector"));
    }
    let since = SimTime::from_secs(dec.get_f64("mode.since")?);
    let mode_transitions = dec.get_u64("mode.transitions")?;
    engine.mode_tracker =
        ge_metrics::ModeTracker::restore(residency, current, since, mode_transitions);
    let wm = dec.get_f64("speed.weighted_mean_sum")?;
    let wv = dec.get_f64("speed.weighted_var_sum")?;
    let tt = dec.get_f64("speed.total_time")?;
    let samples = dec.get_u64("speed.samples")?;
    engine.speed_tracker = ge_metrics::SpeedTracker::restore(wm, wv, tt, samples);
    let bins = dec.get_u64_vec("latency.bins")?;
    let upper = dec.get_f64("latency.upper")?;
    let lat_count = dec.get_u64("latency.count")?;
    let lat_sum = dec.get_f64("latency.sum")?;
    let lat_max = dec.get_f64("latency.max_seen")?;
    let lat_dropped = dec.get_u64("latency.dropped")?;
    if !(upper.is_finite() && upper > 0.0) || bins.len() < 2 {
        return Err(CheckpointError::Invalid("malformed latency histogram"));
    }
    engine.latency =
        ge_metrics::Histogram::restore(bins, upper, lat_count, lat_sum, lat_max, lat_dropped);

    // 5. Driver-local state.
    let n_queue = dec.get_len("driver.queue")?;
    let mut queue = Vec::with_capacity(n_queue);
    for _ in 0..n_queue {
        let id = JobId(dec.get_u64("queue.job.id")?);
        let release = SimTime::from_secs(dec.get_f64("queue.job.release")?);
        let deadline = SimTime::from_secs(dec.get_f64("queue.job.deadline")?);
        let demand = dec.get_f64("queue.job.demand")?;
        let estimate = dec.get_f64("queue.job.estimate")?;
        queue.push(Job {
            id,
            release,
            deadline,
            demand,
            estimate,
        });
    }
    engine.queue = queue;
    let n_window = dec.get_len("driver.arrivals_window")?;
    let mut arrivals = std::collections::VecDeque::with_capacity(n_window);
    for _ in 0..n_window {
        arrivals.push_back(dec.get_f64("driver.arrival")?);
    }
    engine.arrivals_window = arrivals;
    engine.epochs = dec.get_u64("driver.epochs")?;
    engine.last_t = SimTime::from_secs(dec.get_f64("driver.last_t")?);
    engine.last_speeds = dec.get_f64_vec("driver.last_speeds")?;
    if engine.last_speeds.len() != cores {
        return Err(CheckpointError::Invalid(
            "speed vector length disagrees with core count",
        ));
    }
    engine.next_check = dec
        .get_opt_f64("driver.next_check")?
        .map(SimTime::from_secs);
    let n_orphans = dec.get_len("driver.orphans")?;
    let mut orphans = Vec::with_capacity(n_orphans);
    for _ in 0..n_orphans {
        orphans.push(decode_core_job(&mut dec)?);
    }
    engine.orphans = orphans;
    engine.shed_buf.clear();
    engine.budget_factor = dec.get_f64("driver.budget_factor")?;
    engine.jobs_shed = dec.get_u64("driver.jobs_shed")?;
    match dec.get_u8("driver.injector.tag")? {
        0 => {
            if engine.injector.is_some() {
                return Err(CheckpointError::Invalid(
                    "checkpoint has no fault state but a fault schedule was supplied",
                ));
            }
        }
        1 => {
            let online = dec.get_bool_vec("injector.online")?;
            let speed_factors = dec.get_f64_vec("injector.speed_factors")?;
            let budget_factor = dec.get_f64("injector.budget_factor")?;
            if online.len() != cores || speed_factors.len() != cores {
                return Err(CheckpointError::Invalid(
                    "fault state length disagrees with core count",
                ));
            }
            match engine.injector.as_mut() {
                Some(inj) => inj.restore_state(online, speed_factors, budget_factor),
                None => {
                    return Err(CheckpointError::Invalid(
                        "checkpoint has fault state but no fault schedule was supplied",
                    ))
                }
            }
        }
        tag => {
            return Err(CheckpointError::Codec(CodecError::BadTag {
                field: "driver.injector.tag",
                tag,
            }))
        }
    }

    // 6. Policy state.
    let sched_bytes = dec.get_bytes("scheduler.state")?;
    let mut sub = Decoder::new(&sched_bytes);
    sched.restore_state(&mut sub)?;
    sub.finish("scheduler.state")?;

    dec.finish("engine")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ge_trace::NullSink;
    use ge_workload::{WorkloadConfig, WorkloadGenerator};

    fn small_cfg() -> SimConfig {
        SimConfig {
            horizon: SimTime::from_secs(12.0),
            ..SimConfig::paper_default()
        }
    }

    fn small_trace(rate: f64, seed: u64) -> Trace {
        let wc = WorkloadConfig {
            horizon: SimTime::from_secs(12.0),
            ..WorkloadConfig::paper_default(rate)
        };
        WorkloadGenerator::new(wc, seed).generate()
    }

    fn bits(r: &RunResult) -> Vec<u64> {
        vec![
            r.quality.to_bits(),
            r.energy_j.to_bits(),
            r.jobs_finished,
            r.jobs_discarded,
            r.jobs_shed,
            r.jobs_completed_fully,
            r.aes_fraction.to_bits(),
            r.mode_transitions,
            r.mean_speed_ghz.to_bits(),
            r.speed_variance.to_bits(),
            r.schedule_epochs,
            r.mean_latency_ms.to_bits(),
            r.p95_latency_ms.to_bits(),
            r.p99_latency_ms.to_bits(),
            r.core_energy_cv.to_bits(),
        ]
    }

    #[test]
    fn snapshot_resume_midway_is_bit_exact() {
        let cfg = small_cfg();
        let trace = small_trace(140.0, 11);
        let straight = crate::driver::run(&cfg, &trace, &Algorithm::Ge);

        let mut run = ResumableRun::start(&cfg, &trace, &Algorithm::Ge, None, &mut NullSink);
        let mid = SimTime::from_secs(6.0);
        run.advance_to(mid, &mut NullSink);
        let snap = run.snapshot();
        drop(run);

        let resumed = ResumableRun::resume(&cfg, &trace, &Algorithm::Ge, None, &snap)
            .expect("resume must succeed");
        let result = resumed.finish(&mut NullSink);
        assert_eq!(bits(&straight), bits(&result));
    }

    #[test]
    fn digest_rejects_mismatched_inputs() {
        let cfg = small_cfg();
        let trace = small_trace(140.0, 11);
        let mut run = ResumableRun::start(&cfg, &trace, &Algorithm::Ge, None, &mut NullSink);
        run.advance_to(SimTime::from_secs(2.0), &mut NullSink);
        let snap = run.snapshot();

        let other_trace = small_trace(140.0, 12);
        let err = ResumableRun::resume(&cfg, &other_trace, &Algorithm::Ge, None, &snap)
            .err()
            .expect("wrong trace must be rejected");
        assert!(matches!(err, CheckpointError::DigestMismatch { .. }));

        let err = ResumableRun::resume(&cfg, &trace, &Algorithm::Be, None, &snap)
            .err()
            .expect("wrong algorithm must be rejected");
        assert!(matches!(err, CheckpointError::DigestMismatch { .. }));
    }

    #[test]
    fn run_resumable_stop_and_resume_completes() {
        let cfg = small_cfg();
        let trace = small_trace(130.0, 13);
        let straight = crate::driver::run(&cfg, &trace, &Algorithm::Ge);

        let dir = std::env::temp_dir().join(format!("ge-resume-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("run.ckpt");
        let policy = CheckpointPolicy {
            path: path.clone(),
            every_quanta: 3,
            stop_after: Some(2),
        };
        let out = run_resumable(&cfg, &trace, &Algorithm::Ge, None, &policy, &mut NullSink)
            .expect("checkpointed run");
        assert!(matches!(
            out,
            ResumableOutcome::Stopped { checkpoints: 2, .. }
        ));

        let resume_policy = CheckpointPolicy {
            path: path.clone(),
            every_quanta: 3,
            stop_after: None,
        };
        let out = resume_from(
            &cfg,
            &trace,
            &Algorithm::Ge,
            None,
            &resume_policy,
            &mut NullSink,
        )
        .expect("resumed run");
        let result = match out {
            ResumableOutcome::Finished(r) => r,
            other => panic!("expected Finished, got {other:?}"),
        };
        assert_eq!(bits(&straight), bits(&result));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
