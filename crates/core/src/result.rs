//! Run results — the measurements every reproduced figure is built from.

/// Everything measured over one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The algorithm label (e.g. `"GE"`, `"BE"`, `"FCFS"`).
    pub algorithm: String,
    /// Final service quality `Q = Σ f(c_j) / Σ f(p_j)` over all jobs.
    pub quality: f64,
    /// Total energy `∫ P dt` in joules.
    pub energy_j: f64,
    /// Number of jobs whose service ended during the run.
    pub jobs_finished: u64,
    /// Jobs that ended with zero processed volume.
    pub jobs_discarded: u64,
    /// Jobs rejected by admission control under the `Q_min` degradation
    /// floor (a subset of `jobs_discarded`). Zero in fault-free runs.
    pub jobs_shed: u64,
    /// Jobs that achieved their full quality.
    pub jobs_completed_fully: u64,
    /// Fraction of time spent in the AES mode (1.0 for algorithms that
    /// never leave it; 0.0 for pure best-effort algorithms).
    pub aes_fraction: f64,
    /// Number of AES↔BQ transitions.
    pub mode_transitions: u64,
    /// Time-weighted mean core speed (GHz) — Fig. 6a.
    pub mean_speed_ghz: f64,
    /// Time-weighted cross-core speed variance (GHz²) — Fig. 6b.
    pub speed_variance: f64,
    /// Number of scheduler epochs (trigger firings that ran the policy).
    pub schedule_epochs: u64,
    /// Mean response latency of served jobs (ms): finish − release.
    pub mean_latency_ms: f64,
    /// 95th-percentile response latency of served jobs (ms).
    pub p95_latency_ms: f64,
    /// 99th-percentile response latency of served jobs (ms).
    pub p99_latency_ms: f64,
    /// Coefficient of variation of per-core energy (std/mean) — the
    /// load-balance signature of the assignment policy (C-RR vs RR).
    pub core_energy_cv: f64,
}

impl RunResult {
    /// Average power over the active span (watts); 0 for an empty run.
    pub fn average_power_w(&self, span_secs: f64) -> f64 {
        if span_secs <= 0.0 {
            0.0
        } else {
            self.energy_j / span_secs
        }
    }

    /// Energy saving of `self` relative to `baseline` as a fraction
    /// (positive = `self` used less energy).
    pub fn energy_saving_vs(&self, baseline: &RunResult) -> f64 {
        if baseline.energy_j <= 0.0 {
            0.0
        } else {
            1.0 - self.energy_j / baseline.energy_j
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(energy: f64) -> RunResult {
        RunResult {
            algorithm: "X".into(),
            quality: 0.9,
            energy_j: energy,
            jobs_finished: 100,
            jobs_discarded: 1,
            jobs_shed: 0,
            jobs_completed_fully: 50,
            aes_fraction: 0.8,
            mode_transitions: 4,
            mean_speed_ghz: 1.8,
            speed_variance: 0.1,
            schedule_epochs: 1000,
            mean_latency_ms: 100.0,
            p95_latency_ms: 140.0,
            p99_latency_ms: 149.0,
            core_energy_cv: 0.05,
        }
    }

    #[test]
    fn average_power() {
        let r = sample(600.0);
        assert!((r.average_power_w(600.0) - 1.0).abs() < 1e-12);
        assert_eq!(r.average_power_w(0.0), 0.0);
    }

    #[test]
    fn energy_saving() {
        let ge = sample(76.1);
        let be = sample(100.0);
        assert!((ge.energy_saving_vs(&be) - 0.239).abs() < 1e-9);
        let zero = sample(0.0);
        assert_eq!(ge.energy_saving_vs(&zero), 0.0);
    }
}
