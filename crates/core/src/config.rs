//! Simulation configuration — the paper's §IV-B setup as data.

use ge_power::DiscreteSpeedSet;
use ge_quality::LedgerMode;
use ge_simcore::{SimDuration, SimTime};

/// Which power-distribution policy the scheduler uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerPolicy {
    /// The paper's hybrid: ES below the critical load, WF above it.
    Hybrid,
    /// Equal-Sharing always (Fig. 6/7 ablation).
    EqualSharingOnly,
    /// Water-Filling always (Fig. 6/7 ablation; also what BE uses).
    WaterFillingOnly,
}

/// Full platform + algorithm configuration for one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of cores `m` (paper: 16).
    pub cores: usize,
    /// Total dynamic-power budget `H` in watts (paper: 320).
    pub budget_w: f64,
    /// Power-model scale `a` in `P = a·s^β` (paper: 5).
    pub power_a: f64,
    /// Power-model exponent `β` (paper: 2).
    pub power_beta: f64,
    /// Quality-function concavity `c` in Eq. 1 (paper: 0.003).
    pub quality_c: f64,
    /// Quality-function saturation demand `x_max` (paper: 1000).
    pub quality_xmax: f64,
    /// The good-enough quality target `Q_GE` (paper: 0.9).
    pub q_ge: f64,
    /// The degradation floor `Q_min ≤ Q_GE`: the quality the scheduler
    /// refuses to plan below even under faults. Below-floor batches are
    /// shed by admission control instead of silently under-served. `0`
    /// (the default) disables shedding — the fault-free paper setup.
    pub q_min: f64,
    /// Quantum trigger period (paper: 500 ms).
    pub quantum: SimDuration,
    /// Counter trigger threshold in queued jobs (paper: 8).
    pub counter_trigger: usize,
    /// Critical load separating light from heavy (paper: 154 req/s).
    pub critical_load_rps: f64,
    /// Simulation horizon (paper: 600 s); extended internally to the last
    /// deadline so every job's fate is recorded.
    pub horizon: SimTime,
    /// Processing units per GHz-second (paper: 1000).
    pub units_per_ghz_sec: f64,
    /// Discrete DVFS steps; `None` = continuous speeds (the default).
    pub discrete_speeds: Option<DiscreteSpeedSet>,
    /// How the compensation policy's quality monitor aggregates history.
    pub ledger_mode: LedgerMode,
    /// Sliding window (seconds) of the driver's arrival-rate estimator
    /// feeding the hybrid ES/WF switch.
    pub load_window_secs: f64,
}

impl SimConfig {
    /// The paper's §IV-B configuration.
    pub fn paper_default() -> Self {
        SimConfig {
            cores: 16,
            budget_w: 320.0,
            power_a: 5.0,
            power_beta: 2.0,
            quality_c: 0.003,
            quality_xmax: 1000.0,
            q_ge: 0.9,
            q_min: 0.0,
            quantum: SimDuration::from_millis(500.0),
            counter_trigger: 8,
            critical_load_rps: 154.0,
            horizon: SimTime::from_secs(600.0),
            units_per_ghz_sec: 1000.0,
            discrete_speeds: None,
            ledger_mode: LedgerMode::Cumulative,
            load_window_secs: 1.0,
        }
    }

    /// Per-core power under equal sharing (`H/m`, watts).
    pub fn equal_share_w(&self) -> f64 {
        self.budget_w / self.cores as f64
    }

    /// Server capacity in processing units per second when every core runs
    /// at the equal-share speed.
    pub fn equal_share_capacity_units(&self) -> f64 {
        let per_core_speed = (self.equal_share_w() / self.power_a).powf(1.0 / self.power_beta);
        self.cores as f64 * per_core_speed * self.units_per_ghz_sec
    }

    /// Validates internal consistency; called by the driver.
    ///
    /// # Panics
    /// Panics on nonsensical configurations (zero cores, non-positive
    /// budget/quality parameters, `Q_GE` outside `(0, 1]`).
    pub fn validate(&self) {
        assert!(self.cores > 0, "need at least one core");
        assert!(self.budget_w > 0.0, "budget must be positive");
        assert!(
            self.power_a > 0.0 && self.power_beta > 1.0,
            "invalid power model"
        );
        assert!(
            self.quality_c > 0.0 && self.quality_xmax > 0.0,
            "invalid quality function"
        );
        assert!(
            self.q_ge > 0.0 && self.q_ge <= 1.0,
            "Q_GE must be in (0, 1], got {}",
            self.q_ge
        );
        assert!(
            self.q_min >= 0.0 && self.q_min <= self.q_ge,
            "Q_min must be in [0, Q_GE], got {} (Q_GE = {})",
            self.q_min,
            self.q_ge
        );
        assert!(self.counter_trigger > 0, "counter trigger must be positive");
        assert!(self.units_per_ghz_sec > 0.0);
        assert!(self.load_window_secs > 0.0);
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_consistent() {
        let c = SimConfig::paper_default();
        c.validate();
        // H/m = 20 W ⇒ 2 GHz per core ⇒ 32 000 units/s capacity.
        assert!((c.equal_share_w() - 20.0).abs() < 1e-12);
        assert!((c.equal_share_capacity_units() - 32_000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn invalid_qge_rejected() {
        let mut c = SimConfig::paper_default();
        c.q_ge = 1.5;
        c.validate();
    }

    #[test]
    #[should_panic]
    fn qmin_above_qge_rejected() {
        let mut c = SimConfig::paper_default();
        c.q_min = 0.95; // > q_ge = 0.9
        c.validate();
    }

    #[test]
    #[should_panic]
    fn zero_cores_rejected() {
        let mut c = SimConfig::paper_default();
        c.cores = 0;
        c.validate();
    }

    #[test]
    fn default_is_paper() {
        let c = SimConfig::default();
        assert_eq!(c.cores, 16);
        assert_eq!(c.q_ge, 0.9);
    }
}
