//! The Longest-First (LF) job-cutting policy (paper §III-B).
//!
//! In AES mode the GE algorithm trims the *tails* of jobs — the portion
//! with the lowest marginal quality under a concave quality function —
//! until the batch quality equals the good-enough target `Q_GE`:
//!
//! 1. sort jobs by demand, descending;
//! 2. repeatedly level the longest job(s) down to the next-longest value,
//!    recomputing the batch quality `Q = Σ f(c_j) / Σ f(p_j)`;
//! 3. when a levelling step would push `Q` below `Q_GE`, solve the final
//!    common level exactly: with `U` uncut and `C` cut jobs, each cut job
//!    needs quality `f(c) = (Q_GE (F_U + F_C) − F_U)/|C|`, inverted on the
//!    (monotone) quality function — the paper does this by binary search,
//!    we call [`QualityFunction::inverse`] which defaults to exactly that.
//!
//! Levelling the longest jobs to a common level `L` is the same as setting
//! `c_j = min(p_j, L)`, so the whole procedure amounts to finding the level
//! `L*` at which the batch quality hits `Q_GE`. Because
//! `g(L) = Σ f(min(p_j, L))` is continuous and strictly increasing in `L`
//! (up to the max demand), `L*` is unique; the discrete walk below brackets
//! it between adjacent demand values and the final solve is exact.

use crate::function::{InverseMemo, QualityFunction};

/// Result of an LF cut over one batch.
#[derive(Debug, Clone)]
pub struct CutOutcome {
    /// Cut demand `c_j ≤ p_j` for each input job, in input order.
    pub cut_demands: Vec<f64>,
    /// The common level `L*` applied to cut jobs (`∞` if nothing was cut).
    pub level: f64,
    /// Number of jobs whose demand was reduced.
    pub cut_count: usize,
    /// Batch quality after the cut: `Σ f(c_j) / Σ f(p_j)` (1.0 for empty).
    pub achieved_quality: f64,
}

impl Default for CutOutcome {
    fn default() -> Self {
        Self::empty()
    }
}

impl CutOutcome {
    /// The outcome for an empty batch: nothing cut, quality 1.
    pub fn empty() -> Self {
        CutOutcome {
            cut_demands: Vec::new(),
            level: f64::INFINITY,
            cut_count: 0,
            achieved_quality: 1.0,
        }
    }
}

/// Reusable working memory for [`lf_cut_with`]: the descending-demand
/// sort buffer plus the [`InverseMemo`] for the final level solve.
///
/// A scratch is tied to **one** quality function — the memo caches
/// `f.inverse(q)` keyed by `q` alone, so sharing it across different
/// functions would return stale inversions.
#[derive(Debug, Default)]
pub struct CutScratch {
    sorted: Vec<f64>,
    memo: InverseMemo,
}

impl CutScratch {
    /// Creates an empty scratch. Buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Applies the LF cutting policy to a batch of demands.
///
/// Returns per-job cut demands such that the batch quality equals `q_ge`
/// (or stays at 1 if `q_ge ≥ 1`, or drops to whatever a zero-level cut
/// gives if `q_ge ≤ 0`).
///
/// ```
/// use ge_quality::{lf_cut, ExpConcave};
///
/// let f = ExpConcave::paper_default();
/// let out = lf_cut(&f, &[1000.0, 600.0, 300.0, 100.0], 0.9);
/// assert!((out.achieved_quality - 0.9).abs() < 1e-9);
/// // Tails are cut from the longest jobs first.
/// assert!(out.cut_demands[0] < 1000.0);
/// assert_eq!(out.cut_demands[3], 100.0);
/// ```
pub fn lf_cut(f: &dyn QualityFunction, demands: &[f64], q_ge: f64) -> CutOutcome {
    let mut out = CutOutcome::empty();
    lf_cut_with(f, demands, q_ge, &mut CutScratch::new(), &mut out);
    out
}

/// [`lf_cut`] with caller-provided working memory and output storage.
///
/// Behaviourally identical to [`lf_cut`] (the memoized inversion returns
/// the bit-exact value a direct `f.inverse` call would), but the sort
/// buffer, the inversion memo, and the output vector are reused across
/// calls, so the per-epoch cut on the hot scheduling path allocates
/// nothing once warmed up.
pub fn lf_cut_with(
    f: &dyn QualityFunction,
    demands: &[f64],
    q_ge: f64,
    scratch: &mut CutScratch,
    out: &mut CutOutcome,
) {
    let _span = ge_telemetry::SpanGuard::enter_within("lf_cut");
    let n = demands.len();
    out.cut_demands.clear();
    out.level = f64::INFINITY;
    out.cut_count = 0;
    out.achieved_quality = 1.0;
    if n == 0 {
        return;
    }
    debug_assert!(demands.iter().all(|&d| d.is_finite() && d >= 0.0));

    if q_ge >= 1.0 {
        // Degenerate target: no cutting allowed. Resolved before touching
        // the quality function at all — `Q_GE = 1.0` must cost zero `f`
        // evaluations and can never reach the level solve's binary search.
        out.cut_demands.extend_from_slice(demands);
        return;
    }

    let full_sum: f64 = demands.iter().map(|&d| f.value(d)).sum();
    if full_sum <= 0.0 {
        // Nothing measurable to cut against (all-zero demands).
        out.cut_demands.extend_from_slice(demands);
        return;
    }
    let target = (q_ge.max(0.0)) * full_sum;

    // Sort demands descending; walk candidate levels (each distinct demand,
    // then zero) until the quality at that level falls to/below the target.
    let sorted = &mut scratch.sorted;
    sorted.clear();
    sorted.extend_from_slice(demands);
    sorted.sort_by(|a, b| b.total_cmp(a));

    // suffix_f[i] = Σ_{j ≥ i} f(sorted[j]); computed incrementally as we
    // walk i upward by *removing* terms from the full sum.
    let mut suffix_f = full_sum;
    let mut k = 0usize; // number of jobs strictly above the current level
    let mut solved_level = None;

    let mut i = 0;
    while i < n {
        // Advance over the run of jobs equal to sorted[i].
        let run_value = sorted[i];
        let mut run_len = 0;
        while i + run_len < n && sorted[i + run_len] == run_value {
            run_len += 1;
        }
        // These run jobs leave the "uncut suffix" and join the cut set.
        suffix_f -= f.value(run_value) * run_len as f64;
        k += run_len;
        i += run_len;

        // Next candidate level: the next distinct demand, or 0 at the end.
        let next_level = if i < n { sorted[i] } else { 0.0 };

        // Quality with all k cut jobs levelled to `next_level`.
        let q_at_next = suffix_f + k as f64 * f.value(next_level);
        if q_at_next <= target {
            // L* lies in [next_level, run_value]: solve k·f(L) = target − suffix_f.
            let per_job_quality = ((target - suffix_f) / k as f64).max(0.0);
            let l = scratch.memo.inverse(f, per_job_quality);
            solved_level = Some(l.clamp(next_level, run_value));
            break;
        }
    }

    let l_star = solved_level.unwrap_or(0.0);
    out.cut_demands
        .extend(demands.iter().map(|&d| d.min(l_star)));
    let achieved: f64 = out.cut_demands.iter().map(|&c| f.value(c)).sum::<f64>() / full_sum;
    out.level = l_star;
    out.cut_count = demands
        .iter()
        .zip(&out.cut_demands)
        .filter(|(&p, &c)| c < p - 1e-12)
        .count();
    out.achieved_quality = achieved;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{ExpConcave, LinearQuality, PowerLawQuality};

    fn paper_f() -> ExpConcave {
        ExpConcave::paper_default()
    }

    fn batch_quality(f: &dyn QualityFunction, full: &[f64], cut: &[f64]) -> f64 {
        let num: f64 = cut.iter().map(|&c| f.value(c)).sum();
        let den: f64 = full.iter().map(|&p| f.value(p)).sum();
        num / den
    }

    #[test]
    fn hits_target_exactly() {
        let f = paper_f();
        let demands = [1000.0, 750.0, 420.0, 305.0, 130.0, 990.0];
        for q in [0.5, 0.7, 0.9, 0.95, 0.99] {
            let out = lf_cut(&f, &demands, q);
            assert!(
                (out.achieved_quality - q).abs() < 1e-9,
                "target {q} got {}",
                out.achieved_quality
            );
            assert!((batch_quality(&f, &demands, &out.cut_demands) - q).abs() < 1e-9);
        }
    }

    #[test]
    fn never_extends_jobs() {
        let f = paper_f();
        let demands = [900.0, 500.0, 200.0, 140.0];
        let out = lf_cut(&f, &demands, 0.8);
        for (p, c) in demands.iter().zip(&out.cut_demands) {
            assert!(c <= p);
            assert!(*c >= 0.0);
        }
    }

    #[test]
    fn longest_jobs_cut_first() {
        // At a mild target only the longest job should be touched.
        let f = paper_f();
        let demands = [1000.0, 400.0, 300.0, 200.0];
        let out = lf_cut(&f, &demands, 0.99);
        assert!(out.cut_demands[0] < 1000.0);
        assert_eq!(out.cut_demands[1], 400.0);
        assert_eq!(out.cut_demands[2], 300.0);
        assert_eq!(out.cut_demands[3], 200.0);
        assert_eq!(out.cut_count, 1);
    }

    #[test]
    fn cut_jobs_share_a_common_level() {
        let f = paper_f();
        let demands = [1000.0, 950.0, 900.0, 100.0];
        let out = lf_cut(&f, &demands, 0.7);
        // All jobs above the level end up exactly at the level.
        for (p, c) in demands.iter().zip(&out.cut_demands) {
            if *p > out.level {
                assert!((c - out.level).abs() < 1e-9);
            } else {
                assert_eq!(c, p);
            }
        }
    }

    #[test]
    fn q_ge_one_means_no_cut() {
        let f = paper_f();
        let demands = [800.0, 300.0];
        let out = lf_cut(&f, &demands, 1.0);
        assert_eq!(out.cut_demands, demands.to_vec());
        assert_eq!(out.cut_count, 0);
        assert_eq!(out.achieved_quality, 1.0);
    }

    #[test]
    fn q_ge_zero_cuts_everything_to_zero() {
        let f = paper_f();
        let out = lf_cut(&f, &[500.0, 300.0], 0.0);
        assert!(out.cut_demands.iter().all(|&c| c.abs() < 1e-9));
        assert!(out.achieved_quality.abs() < 1e-9);
    }

    #[test]
    fn empty_batch() {
        let f = paper_f();
        let out = lf_cut(&f, &[], 0.9);
        assert!(out.cut_demands.is_empty());
        assert_eq!(out.achieved_quality, 1.0);
    }

    #[test]
    fn single_job() {
        let f = paper_f();
        let out = lf_cut(&f, &[600.0], 0.9);
        assert!((out.achieved_quality - 0.9).abs() < 1e-9);
        // c solves f(c) = 0.9 · f(600).
        let expected = f.inverse(0.9 * f.value(600.0));
        assert!((out.cut_demands[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn duplicate_demands_handled() {
        let f = paper_f();
        let demands = [500.0, 500.0, 500.0, 500.0];
        let out = lf_cut(&f, &demands, 0.85);
        assert!((out.achieved_quality - 0.85).abs() < 1e-9);
        // Symmetry: all jobs get the same cut.
        let first = out.cut_demands[0];
        assert!(out.cut_demands.iter().all(|&c| (c - first).abs() < 1e-9));
        assert_eq!(out.cut_count, 4);
    }

    #[test]
    fn cutting_saves_work() {
        // The point of AES: the work removed should be disproportionally
        // large compared to the quality given up, thanks to concavity.
        let f = paper_f();
        let demands = [1000.0, 800.0, 600.0, 400.0, 200.0];
        let out = lf_cut(&f, &demands, 0.9);
        let full: f64 = demands.iter().sum();
        let kept: f64 = out.cut_demands.iter().sum();
        let work_saved = 1.0 - kept / full;
        assert!(
            work_saved > 0.2,
            "10% quality sacrifice should save >20% work, saved {work_saved}"
        );
    }

    #[test]
    fn works_with_other_concave_families() {
        let demands = [1000.0, 320.0, 510.0];
        for q in [0.6, 0.9] {
            let f = PowerLawQuality::new(0.5, 1000.0);
            let out = lf_cut(&f, &demands, q);
            assert!((out.achieved_quality - q).abs() < 1e-6);

            let f = LinearQuality::new(1000.0);
            let out = lf_cut(&f, &demands, q);
            assert!((out.achieved_quality - q).abs() < 1e-6);
        }
    }

    /// Wraps a quality function and counts `value` evaluations, to prove
    /// degenerate paths never consult `f` (and so cannot stall in the
    /// inversion's binary search).
    struct CountingF {
        inner: ExpConcave,
        calls: std::sync::atomic::AtomicU64,
    }

    impl QualityFunction for CountingF {
        fn value(&self, x: f64) -> f64 {
            self.calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.value(x)
        }
        fn x_max(&self) -> f64 {
            self.inner.x_max()
        }
    }

    #[test]
    fn q_ge_one_evaluates_f_zero_times() {
        let f = CountingF {
            inner: ExpConcave::paper_default(),
            calls: std::sync::atomic::AtomicU64::new(0),
        };
        for q in [1.0, 1.0 + 1e-12, 2.5] {
            let out = lf_cut(&f, &[700.0, 300.0, 300.0], q);
            assert_eq!(out.cut_demands, vec![700.0, 300.0, 300.0]);
            assert_eq!(out.cut_count, 0);
            assert_eq!(out.level, f64::INFINITY);
            assert_eq!(out.achieved_quality, 1.0);
        }
        assert_eq!(
            f.calls.load(std::sync::atomic::Ordering::Relaxed),
            0,
            "Q_GE >= 1.0 must be resolved without evaluating f"
        );
    }

    #[test]
    fn empty_batch_with_reused_scratch() {
        let f = paper_f();
        let mut scratch = CutScratch::new();
        let mut out = CutOutcome::empty();
        // Warm the scratch on a real batch, then feed an empty one: the
        // output must reset completely rather than leak the prior cut.
        lf_cut_with(&f, &[900.0, 100.0], 0.8, &mut scratch, &mut out);
        assert_eq!(out.cut_demands.len(), 2);
        lf_cut_with(&f, &[], 0.8, &mut scratch, &mut out);
        assert!(out.cut_demands.is_empty());
        assert_eq!(out.cut_count, 0);
        assert_eq!(out.level, f64::INFINITY);
        assert_eq!(out.achieved_quality, 1.0);
    }

    #[test]
    fn single_job_degenerate_targets() {
        let f = paper_f();
        // q_ge = 1: untouched, no search.
        let out = lf_cut(&f, &[600.0], 1.0);
        assert_eq!(out.cut_demands, vec![600.0]);
        assert_eq!(out.cut_count, 0);
        // q_ge = 0: levelled to zero.
        let out = lf_cut(&f, &[600.0], 0.0);
        assert!(out.cut_demands[0].abs() < 1e-9);
        assert_eq!(out.cut_count, 1);
        // Single zero-demand job: quality is vacuously 1, demand kept.
        let out = lf_cut(&f, &[0.0], 0.9);
        assert_eq!(out.cut_demands, vec![0.0]);
        assert_eq!(out.cut_count, 0);
        assert_eq!(out.achieved_quality, 1.0);
    }

    #[test]
    fn single_job_matches_direct_inversion_across_targets() {
        let f = paper_f();
        for q in [0.05, 0.3, 0.9, 0.999] {
            let out = lf_cut(&f, &[870.0], q);
            let expected = f.inverse(q * f.value(870.0));
            assert!(
                (out.cut_demands[0] - expected).abs() < 1e-6,
                "q={q}: {} vs {expected}",
                out.cut_demands[0]
            );
            assert_eq!(out.cut_count, 1);
        }
    }

    #[test]
    fn zero_demand_jobs_are_inert() {
        let f = paper_f();
        let demands = [0.0, 700.0, 0.0, 300.0];
        let out = lf_cut(&f, &demands, 0.9);
        assert_eq!(out.cut_demands[0], 0.0);
        assert_eq!(out.cut_demands[2], 0.0);
        assert!((out.achieved_quality - 0.9).abs() < 1e-9);
    }
}

#[cfg(test)]
mod generative_tests {
    use super::*;
    use crate::function::ExpConcave;
    use ge_simcore::RngStream;

    fn random_demands(rng: &mut RngStream, min_n: usize, max_n: usize) -> Vec<f64> {
        let n = min_n + rng.next_below((max_n - min_n) as u64) as usize;
        (0..n).map(|_| rng.uniform_range(1.0, 1000.0)).collect()
    }

    #[test]
    fn always_hits_target() {
        let f = ExpConcave::paper_default();
        for seed in 0..128u64 {
            let mut rng = RngStream::from_root(seed, "cut/target");
            let demands = random_demands(&mut rng, 1, 40);
            let q = rng.uniform_range(0.05, 0.999);
            let out = lf_cut(&f, &demands, q);
            assert!((out.achieved_quality - q).abs() < 1e-7);
            for (p, c) in demands.iter().zip(&out.cut_demands) {
                assert!(*c <= *p + 1e-12);
                assert!(*c >= -1e-12);
            }
        }
    }

    #[test]
    fn cut_is_levelling() {
        // The outcome must equal min(p_j, L) for the reported level.
        let f = ExpConcave::paper_default();
        for seed in 0..128u64 {
            let mut rng = RngStream::from_root(seed, "cut/level");
            let demands = random_demands(&mut rng, 2, 40);
            let q = rng.uniform_range(0.1, 0.95);
            let out = lf_cut(&f, &demands, q);
            for (p, c) in demands.iter().zip(&out.cut_demands) {
                assert!((c - p.min(out.level)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // A long-lived scratch (sort buffer + inversion memo) must give
        // byte-for-byte the same outcome as the allocating entry point.
        let f = ExpConcave::paper_default();
        let mut scratch = CutScratch::new();
        let mut out = CutOutcome::empty();
        for seed in 0..64u64 {
            let mut rng = RngStream::from_root(seed, "cut/scratch");
            let demands = random_demands(&mut rng, 1, 30);
            let q = rng.uniform_range(0.05, 0.999);
            let fresh = lf_cut(&f, &demands, q);
            lf_cut_with(&f, &demands, q, &mut scratch, &mut out);
            assert_eq!(fresh.level.to_bits(), out.level.to_bits());
            assert_eq!(fresh.cut_count, out.cut_count);
            assert_eq!(
                fresh.achieved_quality.to_bits(),
                out.achieved_quality.to_bits()
            );
            assert_eq!(fresh.cut_demands.len(), out.cut_demands.len());
            for (a, b) in fresh.cut_demands.iter().zip(&out.cut_demands) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn lf_is_optimal_among_equal_quality_cuts() {
        // Among allocations achieving the same batch quality, levelling
        // minimizes total retained work (dual of concave maximization).
        // Check against a uniform-proportional alternative.
        let f = ExpConcave::paper_default();
        for seed in 0..96u64 {
            let mut rng = RngStream::from_root(seed, "cut/optimal");
            let demands = random_demands(&mut rng, 2, 12);
            let q = rng.uniform_range(0.3, 0.95);
            let out = lf_cut(&f, &demands, q);
            let lf_work: f64 = out.cut_demands.iter().sum();

            // Proportional cut achieving the same quality (bisect a scale).
            let full: f64 = demands.iter().map(|&d| f.value(d)).sum();
            let target = q * full;
            let (mut lo, mut hi) = (0.0, 1.0);
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                let got: f64 = demands.iter().map(|&d| f.value(d * mid)).sum();
                if got < target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let scale = 0.5 * (lo + hi);
            let prop_work: f64 = demands.iter().map(|&d| d * scale).sum();
            assert!(
                lf_work <= prop_work + 1e-6,
                "LF retained {lf_work} > proportional {prop_work}"
            );
        }
    }
}
