//! Online quality monitoring — the input to GE's compensation policy.
//!
//! The scheduler must know, "upon each scheduled job" (paper §III-A), the
//! perceived service quality so far: `Q = Σ f(c_j) / Σ f(p_j)` over jobs
//! whose service is finished (completed, cut short, or expired). The
//! ledger supports the paper's cumulative ("overall quality") monitor and
//! a sliding-window variant used in ablations — a window forgets ancient
//! history so the compensation policy reacts to *recent* user experience.

use std::collections::VecDeque;

/// How much history the ledger aggregates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerMode {
    /// All jobs since the start of the run (the paper's choice).
    Cumulative,
    /// Only the most recent `n` finished jobs.
    SlidingWindow(usize),
}

/// Running aggregate of achieved vs. achievable quality.
#[derive(Debug, Clone)]
pub struct QualityLedger {
    mode: LedgerMode,
    achieved_sum: f64,
    full_sum: f64,
    count: u64,
    discarded: u64,
    completed: u64,
    window: VecDeque<(f64, f64)>,
}

impl QualityLedger {
    /// Creates a cumulative ledger (the paper's overall-quality monitor).
    pub fn cumulative() -> Self {
        Self::new(LedgerMode::Cumulative)
    }

    /// Creates a ledger with the given history mode.
    ///
    /// # Panics
    /// Panics on a zero-length sliding window.
    pub fn new(mode: LedgerMode) -> Self {
        if let LedgerMode::SlidingWindow(n) = mode {
            assert!(n > 0, "sliding window must be non-empty");
        }
        QualityLedger {
            mode,
            achieved_sum: 0.0,
            full_sum: 0.0,
            count: 0,
            discarded: 0,
            completed: 0,
            window: VecDeque::new(),
        }
    }

    /// Records a finished job: `achieved = f(c_j)`, `full = f(p_j)`.
    ///
    /// # Panics
    /// Panics (debug) if `achieved` exceeds `full` or either is negative —
    /// partial processing can never beat full processing.
    pub fn record(&mut self, achieved: f64, full: f64) {
        debug_assert!(full >= 0.0 && achieved >= -1e-12);
        debug_assert!(
            achieved <= full + 1e-9,
            "achieved quality {achieved} exceeds full {full}"
        );
        let achieved = achieved.max(0.0);
        self.count += 1;
        if achieved <= 1e-12 {
            self.discarded += 1;
        }
        if (full - achieved).abs() <= 1e-12 {
            self.completed += 1;
        }
        match self.mode {
            LedgerMode::Cumulative => {
                self.achieved_sum += achieved;
                self.full_sum += full;
            }
            LedgerMode::SlidingWindow(n) => {
                self.window.push_back((achieved, full));
                self.achieved_sum += achieved;
                self.full_sum += full;
                while self.window.len() > n {
                    let (a, f) = self.window.pop_front().expect("window non-empty");
                    self.achieved_sum -= a;
                    self.full_sum -= f;
                }
            }
        }
    }

    /// The monitored quality `Q`. Returns 1.0 before any job finishes
    /// (an empty history has lost nothing).
    pub fn quality(&self) -> f64 {
        if self.full_sum <= 0.0 {
            1.0
        } else {
            // Window-eviction float drift can leave Q epsilon-above 1.
            (self.achieved_sum / self.full_sum).min(1.0)
        }
    }

    /// Total jobs recorded over the whole run (ignores windowing).
    pub fn jobs_recorded(&self) -> u64 {
        self.count
    }

    /// Jobs that finished with (numerically) zero quality.
    pub fn jobs_discarded(&self) -> u64 {
        self.discarded
    }

    /// Jobs that achieved their full quality.
    pub fn jobs_completed_fully(&self) -> u64 {
        self.completed
    }

    /// Sum of achieved quality values currently in scope.
    pub fn achieved_sum(&self) -> f64 {
        self.achieved_sum
    }

    /// Sum of full (achievable) quality values currently in scope.
    pub fn full_sum(&self) -> f64 {
        self.full_sum
    }

    /// Counters `(count, discarded, completed)` for checkpointing.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.count, self.discarded, self.completed)
    }

    /// The sliding-window history currently in scope (empty in cumulative
    /// mode), oldest first, as `(achieved, full)` pairs.
    pub fn window_entries(&self) -> Vec<(f64, f64)> {
        self.window.iter().copied().collect()
    }

    /// Reconstructs a ledger from checkpoint state. The sums are restored
    /// verbatim — NOT recomputed from the window — so the float values
    /// (including any accumulated eviction drift) match the snapshotted
    /// ledger bit-for-bit.
    ///
    /// # Panics
    /// Panics on a zero-length sliding window mode.
    pub fn restore(
        mode: LedgerMode,
        achieved_sum: f64,
        full_sum: f64,
        counters: (u64, u64, u64),
        window: Vec<(f64, f64)>,
    ) -> Self {
        if let LedgerMode::SlidingWindow(n) = mode {
            assert!(n > 0, "sliding window must be non-empty");
        }
        QualityLedger {
            mode,
            achieved_sum,
            full_sum,
            count: counters.0,
            discarded: counters.1,
            completed: counters.2,
            window: window.into(),
        }
    }
}

impl Default for QualityLedger {
    fn default() -> Self {
        Self::cumulative()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_reports_perfect_quality() {
        assert_eq!(QualityLedger::cumulative().quality(), 1.0);
    }

    #[test]
    fn cumulative_ratio() {
        let mut l = QualityLedger::cumulative();
        l.record(0.5, 1.0);
        l.record(1.0, 1.0);
        assert!((l.quality() - 0.75).abs() < 1e-12);
        l.record(0.0, 1.0);
        assert!((l.quality() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counts() {
        let mut l = QualityLedger::cumulative();
        l.record(0.0, 1.0); // discarded
        l.record(0.8, 0.8); // fully completed
        l.record(0.5, 0.9); // partial
        assert_eq!(l.jobs_recorded(), 3);
        assert_eq!(l.jobs_discarded(), 1);
        assert_eq!(l.jobs_completed_fully(), 1);
    }

    #[test]
    fn sliding_window_forgets() {
        let mut l = QualityLedger::new(LedgerMode::SlidingWindow(2));
        l.record(0.0, 1.0); // will be evicted
        l.record(1.0, 1.0);
        l.record(1.0, 1.0);
        assert!((l.quality() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_window_partial_history() {
        let mut l = QualityLedger::new(LedgerMode::SlidingWindow(10));
        l.record(0.4, 1.0);
        assert!((l.quality() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn quality_clamped_at_one() {
        let mut l = QualityLedger::new(LedgerMode::SlidingWindow(1));
        for _ in 0..1000 {
            l.record(0.123_456, 0.123_456);
        }
        assert!(l.quality() <= 1.0);
        assert!(l.quality() > 0.999_999);
    }

    #[test]
    #[should_panic]
    fn zero_window_panics() {
        let _ = QualityLedger::new(LedgerMode::SlidingWindow(0));
    }

    #[test]
    fn compensation_scenario() {
        // The GE pattern: quality dips below target, then recovers as
        // full-quality (BQ-mode) jobs are recorded.
        let mut l = QualityLedger::cumulative();
        for _ in 0..10 {
            l.record(0.85, 1.0);
        }
        assert!(l.quality() < 0.9);
        let mut rounds = 0;
        while l.quality() < 0.9 {
            l.record(1.0, 1.0);
            rounds += 1;
            assert!(rounds < 100, "quality must recover");
        }
        assert!(rounds > 0);
    }
}

#[cfg(test)]
mod generative_tests {
    use super::*;
    use ge_simcore::RngStream;

    #[test]
    fn quality_always_in_unit_interval() {
        for seed in 0..64u64 {
            let mut rng = RngStream::from_root(seed, "ledger/unit");
            let mode = if rng.uniform01() < 0.5 {
                LedgerMode::Cumulative
            } else {
                LedgerMode::SlidingWindow(1 + rng.next_below(49) as usize)
            };
            let mut l = QualityLedger::new(mode);
            for _ in 0..rng.next_below(200) {
                let a = rng.uniform01();
                let f = rng.uniform01();
                let (a, f) = if a <= f { (a, f) } else { (f, a) };
                l.record(a, f);
                assert!((0.0..=1.0).contains(&l.quality()));
            }
        }
    }

    #[test]
    fn window_matches_naive_recompute() {
        for seed in 0..48u64 {
            let mut rng = RngStream::from_root(seed, "ledger/window");
            let n = 1 + rng.next_below(19) as usize;
            let mut l = QualityLedger::new(LedgerMode::SlidingWindow(n));
            let mut clean: Vec<(f64, f64)> = Vec::new();
            for _ in 0..1 + rng.next_below(99) {
                let a = rng.uniform01();
                let f = rng.uniform01();
                let (a, f) = if a <= f { (a, f) } else { (f, a) };
                l.record(a, f);
                clean.push((a, f));
                let tail = &clean[clean.len().saturating_sub(n)..];
                let fs: f64 = tail.iter().map(|r| r.1).sum();
                let as_: f64 = tail.iter().map(|r| r.0).sum();
                let expected = if fs <= 0.0 { 1.0 } else { (as_ / fs).min(1.0) };
                assert!((l.quality() - expected).abs() < 1e-9);
            }
        }
    }
}
