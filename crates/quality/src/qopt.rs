//! The Quality-OPT allocator (paper §III-E, after He et al., ICDCS 2011).
//!
//! When a core's power share cannot finish its assigned batch, GE applies a
//! *second cut*: choose processed volumes `c_j ≤ p_j` that maximize the
//! total quality `Σ f(c_j)` subject to the achievable volume
//! `Σ c_j ≤ V` (the volume the core can retire before deadlines at its
//! power-capped speed).
//!
//! For a common concave quality function — the paper's setting — the
//! maximizer *level-fills*: all constrained jobs are processed to a common
//! level `L`, saturated jobs run in full, and `Σ min(p_j, L) = V`. Proof
//! sketch: at an optimum the marginal quality `f'(c_j)` is equal across all
//! jobs with `0 < c_j < p_j` (else moving volume from the lower-marginal to
//! the higher-marginal job improves the objective); since `f'` is strictly
//! decreasing this pins a common level. The level is found exactly by
//! sorting + prefix sums, no iteration.

/// Result of a level-fill allocation.
#[derive(Debug, Clone)]
pub struct LevelFill {
    /// Allocated volume `c_j ≤ p_j` per job, in input order.
    pub allocations: Vec<f64>,
    /// The water level `L` (`∞` when the budget covers everything).
    pub level: f64,
    /// Total allocated volume `Σ c_j` (= `min(V, Σ p_j)` up to rounding).
    pub used: f64,
}

/// Distributes a processing-volume budget across jobs to maximize total
/// quality under a common concave quality function.
///
/// ```
/// use ge_quality::level_fill;
///
/// let out = level_fill(&[100.0, 500.0, 900.0], 600.0);
/// // Short job saturated, the two long jobs levelled at 250.
/// assert_eq!(out.allocations, vec![100.0, 250.0, 250.0]);
/// assert!((out.used - 600.0).abs() < 1e-9);
/// ```
pub fn level_fill(demands: &[f64], budget: f64) -> LevelFill {
    let n = demands.len();
    debug_assert!(demands.iter().all(|&d| d.is_finite() && d >= 0.0));
    let budget = budget.max(0.0);
    if n == 0 {
        return LevelFill {
            allocations: Vec::new(),
            level: f64::INFINITY,
            used: 0.0,
        };
    }
    let total: f64 = demands.iter().sum();
    if budget >= total {
        return LevelFill {
            allocations: demands.to_vec(),
            level: f64::INFINITY,
            used: total,
        };
    }

    // Sort ascending; find the largest k such that saturating the k
    // smallest jobs and levelling the rest fits the budget.
    let mut sorted: Vec<f64> = demands.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("demands are finite"));

    let mut saturated_sum = 0.0;
    let mut level = 0.0;
    for (k, &d) in sorted.iter().enumerate() {
        let remaining_jobs = (n - k) as f64;
        // Candidate: level everything not yet saturated at `d`.
        let need = saturated_sum + remaining_jobs * d;
        if need >= budget {
            level = (budget - saturated_sum) / remaining_jobs;
            break;
        }
        saturated_sum += d;
        level = d; // all of sorted[..=k] saturated so far
    }

    let allocations: Vec<f64> = demands.iter().map(|&d| d.min(level)).collect();
    let used: f64 = allocations.iter().sum();
    LevelFill {
        allocations,
        level,
        used,
    }
}

/// Level-filling under *nested prefix* capacity constraints.
///
/// Jobs are given in EDF (deadline) order. `cum_budgets[i]` is the total
/// volume the core can retire by job `i`'s deadline (non-decreasing), so a
/// feasible allocation must satisfy `Σ_{j ≤ i} c_j ≤ cum_budgets[i]` for
/// every `i`, plus `c_j ≤ demands[j]`. Among feasible allocations this
/// returns the *max-min fair* one, which maximizes `Σ f(c_j)` for **any**
/// common concave `f` (symmetric concave objectives are maximized at the
/// lexicographically max-min point of such a polymatroid-style region).
///
/// Algorithm: run an unconstrained [`level_fill`] on the whole batch with
/// the final budget; if some prefix is violated, the *tightest* violated
/// prefix must hold with equality in any optimum — fix those jobs by
/// recursing on the prefix with its own budget, subtract, and recurse on
/// the suffix. Terminates in at most `n` rounds.
///
/// # Panics
/// Panics if lengths differ or `cum_budgets` decreases.
pub fn prefix_level_fill(demands: &[f64], cum_budgets: &[f64]) -> Vec<f64> {
    assert_eq!(
        demands.len(),
        cum_budgets.len(),
        "one cumulative budget per job"
    );
    assert!(
        cum_budgets.windows(2).all(|w| w[1] >= w[0] - 1e-9),
        "cumulative budgets must be non-decreasing"
    );
    let n = demands.len();
    if n == 0 {
        return Vec::new();
    }

    let alloc = level_fill(demands, cum_budgets[n - 1]).allocations;

    // Find the most-violated prefix, if any.
    let mut prefix = 0.0;
    let mut worst: Option<(usize, f64)> = None;
    for i in 0..n {
        prefix += alloc[i];
        let excess = prefix - cum_budgets[i];
        if excess > 1e-9 {
            let better = match worst {
                None => true,
                Some((_, we)) => excess > we,
            };
            if better {
                worst = Some((i, excess));
            }
        }
    }
    let Some((i, _)) = worst else {
        return alloc;
    };

    // The prefix [0..=i] binds: give it exactly its budget, optimally.
    let head = prefix_level_fill(&demands[..=i], &cum_budgets[..=i]);
    // And re-solve the suffix with the head's volume subtracted.
    let used: f64 = head.iter().sum();
    let tail_budgets: Vec<f64> = cum_budgets[i + 1..]
        .iter()
        .map(|&b| (b - used).max(0.0))
        .collect();
    let tail = prefix_level_fill(&demands[i + 1..], &tail_budgets);
    let mut out = head;
    out.extend(tail);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{ExpConcave, QualityFunction};

    #[test]
    fn budget_covers_everything() {
        let out = level_fill(&[10.0, 20.0], 100.0);
        assert_eq!(out.allocations, vec![10.0, 20.0]);
        assert!(out.level.is_infinite());
        assert!((out.used - 30.0).abs() < 1e-12);
    }

    #[test]
    fn splits_evenly_when_all_constrained() {
        let out = level_fill(&[500.0, 500.0, 500.0], 300.0);
        assert_eq!(out.allocations, vec![100.0, 100.0, 100.0]);
        assert!((out.level - 100.0).abs() < 1e-12);
    }

    #[test]
    fn saturates_short_jobs_first() {
        let out = level_fill(&[50.0, 400.0, 400.0], 450.0);
        assert_eq!(out.allocations, vec![50.0, 200.0, 200.0]);
    }

    #[test]
    fn zero_budget() {
        let out = level_fill(&[100.0, 200.0], 0.0);
        assert_eq!(out.allocations, vec![0.0, 0.0]);
        assert_eq!(out.used, 0.0);
    }

    #[test]
    fn empty_jobs() {
        let out = level_fill(&[], 100.0);
        assert!(out.allocations.is_empty());
        assert_eq!(out.used, 0.0);
    }

    #[test]
    fn budget_exactly_total() {
        let out = level_fill(&[100.0, 200.0], 300.0);
        assert_eq!(out.allocations, vec![100.0, 200.0]);
    }

    #[test]
    fn preserves_input_order() {
        let out = level_fill(&[900.0, 100.0, 500.0], 600.0);
        assert_eq!(out.allocations, vec![250.0, 100.0, 250.0]);
    }

    #[test]
    fn zero_demand_jobs() {
        let out = level_fill(&[0.0, 300.0, 0.0], 100.0);
        assert_eq!(out.allocations, vec![0.0, 100.0, 0.0]);
    }

    #[test]
    fn prefix_unconstrained_matches_plain_level_fill() {
        let demands = [100.0, 500.0, 900.0];
        // Early prefixes are slack: only the final budget binds.
        let out = prefix_level_fill(&demands, &[600.0, 600.0, 600.0]);
        assert_eq!(out, level_fill(&demands, 600.0).allocations);
    }

    #[test]
    fn prefix_binding_first_deadline() {
        // Job 0's deadline allows only 50 units; the rest share later
        // capacity.
        let demands = [200.0, 200.0, 200.0];
        let out = prefix_level_fill(&demands, &[50.0, 300.0, 500.0]);
        assert!((out[0] - 50.0).abs() < 1e-9);
        // Remaining capacity at i=1: 300−50=250 total ⇒ job1 ≤ 200; final
        // 500−50=450 over two jobs levelled at 200 each (demand-capped).
        assert!((out[1] - 200.0).abs() < 1e-9);
        assert!((out[2] - 200.0).abs() < 1e-9);
    }

    #[test]
    fn prefix_middle_constraint_binds() {
        let demands = [300.0, 300.0, 300.0];
        // Prefix caps: 250 by d0, 250 by d1 (binding), 900 by d2.
        let out = prefix_level_fill(&demands, &[250.0, 250.0, 900.0]);
        // First two jobs share 250 fairly: 125 each; job 2 gets the rest.
        assert!((out[0] - 125.0).abs() < 1e-9);
        assert!((out[1] - 125.0).abs() < 1e-9);
        assert!((out[2] - 300.0).abs() < 1e-9);
        // Feasibility.
        assert!(out[0] <= 250.0 + 1e-9);
        assert!(out[0] + out[1] <= 250.0 + 1e-9);
    }

    #[test]
    fn prefix_empty() {
        assert!(prefix_level_fill(&[], &[]).is_empty());
    }

    #[test]
    #[should_panic]
    fn prefix_length_mismatch_panics() {
        let _ = prefix_level_fill(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn prefix_decreasing_budgets_panic() {
        let _ = prefix_level_fill(&[1.0, 1.0], &[5.0, 2.0]);
    }

    #[test]
    fn beats_greedy_edf_truncation_on_quality() {
        // Quality-OPT's whole point: spreading the budget beats spending it
        // all on the first jobs when f is concave.
        let f = ExpConcave::paper_default();
        let demands = [800.0, 800.0, 800.0];
        let budget = 900.0;
        let lf = level_fill(&demands, budget);
        let q_level: f64 = lf.allocations.iter().map(|&c| f.value(c)).sum();
        // Greedy: finish job 1 fully, spend the remainder on job 2.
        let q_greedy = f.value(800.0) + f.value(100.0) + f.value(0.0);
        assert!(
            q_level > q_greedy,
            "level-fill {q_level} should beat greedy {q_greedy}"
        );
    }
}

#[cfg(test)]
mod generative_tests {
    use super::*;
    use crate::function::{ExpConcave, QualityFunction};
    use ge_simcore::RngStream;

    fn random_vec(rng: &mut RngStream, lo: f64, hi: f64, min_n: usize, max_n: usize) -> Vec<f64> {
        let n = min_n + rng.next_below((max_n - min_n) as u64) as usize;
        (0..n).map(|_| rng.uniform_range(lo, hi)).collect()
    }

    #[test]
    fn feasible_and_exhaustive() {
        for seed in 0..96u64 {
            let mut rng = RngStream::from_root(seed, "qopt/feasible");
            let demands = random_vec(&mut rng, 0.0, 1000.0, 1, 50);
            let budget = rng.uniform_range(0.0, 20_000.0);
            let out = level_fill(&demands, budget);
            let total: f64 = demands.iter().sum();
            // Never over budget, never over demand, and uses the whole
            // budget when work remains.
            assert!(out.used <= budget + 1e-6);
            for (p, c) in demands.iter().zip(&out.allocations) {
                assert!(*c <= *p + 1e-12);
                assert!(*c >= 0.0);
            }
            let expected_use = budget.min(total);
            assert!((out.used - expected_use).abs() < 1e-6);
        }
    }

    #[test]
    fn prefix_fill_feasible() {
        for seed in 0..96u64 {
            let mut rng = RngStream::from_root(seed, "qopt/prefix");
            let demands = random_vec(&mut rng, 1.0, 500.0, 1, 20);
            let caps = random_vec(&mut rng, 10.0, 400.0, 1, 20);
            // Build non-decreasing cumulative budgets from positive steps.
            let n = demands.len().min(caps.len());
            let demands = &demands[..n];
            let mut cum = Vec::with_capacity(n);
            let mut acc = 0.0;
            for c in &caps[..n] {
                acc += c;
                cum.push(acc);
            }
            let out = prefix_level_fill(demands, &cum);
            let mut prefix = 0.0;
            for i in 0..n {
                assert!(out[i] >= -1e-9);
                assert!(out[i] <= demands[i] + 1e-9);
                prefix += out[i];
                assert!(
                    prefix <= cum[i] + 1e-6,
                    "prefix {i} violated: {prefix} > {}",
                    cum[i]
                );
            }
        }
    }

    #[test]
    fn prefix_fill_no_improving_shift() {
        // First-order optimality under the prefix constraints for the
        // paper's concave f.
        let f = ExpConcave::paper_default();
        for seed in 0..128u64 {
            let mut rng = RngStream::from_root(seed, "qopt/prefix-opt");
            let demands = random_vec(&mut rng, 1.0, 500.0, 2, 12);
            let caps = random_vec(&mut rng, 20.0, 300.0, 2, 12);
            let n = demands.len().min(caps.len());
            let demands = &demands[..n];
            let mut cum = Vec::with_capacity(n);
            let mut acc = 0.0;
            for c in &caps[..n] {
                acc += c;
                cum.push(acc);
            }
            let out = prefix_level_fill(demands, &cum);
            let src = rng.next_below(n as u64) as usize;
            let dst = rng.next_below(n as u64) as usize;
            let delta = rng.uniform_range(0.5, 20.0);
            if src == dst {
                continue;
            }

            let mut alt = out.clone();
            let d = delta.min(alt[src]).min(demands[dst] - alt[dst]);
            if d <= 1e-6 {
                continue;
            }
            alt[src] -= d;
            alt[dst] += d;
            // Check the perturbed allocation is still prefix-feasible.
            let mut prefix = 0.0;
            let mut feasible = true;
            for i in 0..n {
                prefix += alt[i];
                if prefix > cum[i] + 1e-9 {
                    feasible = false;
                    break;
                }
            }
            if !feasible {
                continue;
            }
            let q_opt: f64 = out.iter().map(|&c| f.value(c)).sum();
            let q_alt: f64 = alt.iter().map(|&c| f.value(c)).sum();
            assert!(
                q_alt <= q_opt + 1e-7,
                "feasible perturbation improved quality: {q_alt} > {q_opt}"
            );
        }
    }

    #[test]
    fn no_feasible_perturbation_improves_quality() {
        // First-order optimality: moving `delta` volume from job i to
        // job j never increases Σ f(c).
        let f = ExpConcave::paper_default();
        for seed in 0..128u64 {
            let mut rng = RngStream::from_root(seed, "qopt/level-opt");
            let demands = random_vec(&mut rng, 1.0, 1000.0, 2, 20);
            let budget_frac = rng.uniform_range(0.1, 0.9);
            let total: f64 = demands.iter().sum();
            let budget = budget_frac * total;
            let out = level_fill(&demands, budget);
            let i = rng.next_below(demands.len() as u64) as usize;
            let j = rng.next_below(demands.len() as u64) as usize;
            let delta = rng.uniform_range(0.1, 50.0);
            if i == j {
                continue;
            }

            let mut alt = out.allocations.clone();
            let d = delta.min(alt[i]).min(demands[j] - alt[j]);
            if d <= 1e-9 {
                continue;
            }
            alt[i] -= d;
            alt[j] += d;

            let q_opt: f64 = out.allocations.iter().map(|&c| f.value(c)).sum();
            let q_alt: f64 = alt.iter().map(|&c| f.value(c)).sum();
            assert!(
                q_alt <= q_opt + 1e-9,
                "perturbation improved quality: {q_alt} > {q_opt}"
            );
        }
    }
}
