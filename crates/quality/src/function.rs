//! Concave quality functions.
//!
//! Paper §II-A, Eq. 1: the reference quality function is
//! `f(x) = (1 − e^{−c·x}) / (1 − e^{−c·x_max})`, normalized so that
//! `f(x_max) = 1`. The constant `c` controls concavity (Fig. 9 sweeps it
//! from 0.0005 to 0.009); `x_max` is the largest possible demand.

/// A normalized, non-decreasing quality function on `[0, x_max]`.
///
/// Invariants every implementation must satisfy (property-tested):
/// * `value(0) == 0`, `value(x_max) == 1`;
/// * monotone non-decreasing;
/// * concave (diminishing returns) — required by the LF-cut and level-fill
///   optimality arguments.
pub trait QualityFunction: Send + Sync {
    /// Quality obtained from processing `x` units (clamped to `[0, x_max]`).
    fn value(&self, x: f64) -> f64;

    /// The demand at which quality saturates at 1.
    fn x_max(&self) -> f64;

    /// Inverse: the least `x` with `value(x) ≥ q`, for `q ∈ [0, 1]`.
    ///
    /// The default implementation is the paper's binary search on the
    /// monotone quality function (§III-B step 5); implementations with a
    /// closed form may override it.
    fn inverse(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return 0.0;
        }
        if q >= 1.0 {
            return self.x_max();
        }
        let (mut lo, mut hi) = (0.0, self.x_max());
        // 60 bisection steps: |hi − lo| shrinks below x_max·2^-60 — far
        // beyond f64 resolution for any practical x_max.
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.value(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Marginal quality `f'(x)` via a central difference (overridable).
    fn marginal(&self, x: f64) -> f64 {
        let h = (self.x_max() * 1e-7).max(1e-9);
        let lo = (x - h).max(0.0);
        let hi = (x + h).min(self.x_max());
        if hi <= lo {
            return 0.0;
        }
        (self.value(hi) - self.value(lo)) / (hi - lo)
    }
}

/// Slot count for [`InverseMemo`]. Power of two so the Fibonacci-hash
/// index reduces to a shift; 256 entries is far beyond the handful of
/// distinct targets a scheduling run queries between cache-relevant
/// state changes.
const INVERSE_MEMO_SLOTS: usize = 256;

/// Direct-mapped memo table for [`QualityFunction::inverse`].
///
/// The LF-cut level solve inverts the quality function once per cut; for
/// functions without a closed form the default inversion is a 60-step
/// bisection (60 `value` evaluations), and epochs whose batch state did
/// not change re-solve the exact same target. The memo caches inversions
/// keyed by the **bit pattern** of `q`, so a hit returns the bit-exact
/// value the direct call would — memoization can never change results.
///
/// A memo is tied to one quality function: it stores nothing about `f`,
/// so reusing it across different functions would serve stale values.
#[derive(Debug, Clone)]
pub struct InverseMemo {
    slots: Vec<Option<(u64, f64)>>,
    hits: u64,
    misses: u64,
}

impl Default for InverseMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl InverseMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        InverseMemo {
            slots: vec![None; INVERSE_MEMO_SLOTS],
            hits: 0,
            misses: 0,
        }
    }

    /// `f.inverse(q)`, served from the memo when `q` repeats.
    pub fn inverse(&mut self, f: &dyn QualityFunction, q: f64) -> f64 {
        let bits = q.to_bits();
        let idx = (bits.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as usize % INVERSE_MEMO_SLOTS;
        if let Some((key, val)) = self.slots[idx] {
            if key == bits {
                self.hits += 1;
                return val;
            }
        }
        self.misses += 1;
        let val = f.inverse(q);
        self.slots[idx] = Some((bits, val));
        val
    }

    /// `(hits, misses)` since construction — for tests and diagnostics.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// The paper's Eq. 1 exponential-saturation quality function.
#[derive(Debug, Clone, Copy)]
pub struct ExpConcave {
    c: f64,
    x_max: f64,
    norm: f64,
}

impl ExpConcave {
    /// Creates `f(x) = (1 − e^{−c·x})/(1 − e^{−c·x_max})`.
    ///
    /// # Panics
    /// Panics unless `c > 0` and `x_max > 0`, both finite.
    pub fn new(c: f64, x_max: f64) -> Self {
        assert!(c.is_finite() && c > 0.0, "concavity must be positive: {c}");
        assert!(
            x_max.is_finite() && x_max > 0.0,
            "x_max must be positive: {x_max}"
        );
        ExpConcave {
            c,
            x_max,
            norm: 1.0 - (-c * x_max).exp(),
        }
    }

    /// The paper's default: `c = 0.003`, `x_max = 1000`.
    pub fn paper_default() -> Self {
        Self::new(0.003, 1000.0)
    }

    /// The concavity multiplier `c`.
    pub fn concavity(&self) -> f64 {
        self.c
    }
}

impl QualityFunction for ExpConcave {
    fn value(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, self.x_max);
        (1.0 - (-self.c * x).exp()) / self.norm
    }

    fn x_max(&self) -> f64 {
        self.x_max
    }

    /// Closed-form inverse: `x = −ln(1 − q·norm)/c`.
    fn inverse(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.x_max;
        }
        (-(1.0 - q * self.norm).ln() / self.c).clamp(0.0, self.x_max)
    }

    fn marginal(&self, x: f64) -> f64 {
        if !(0.0..=self.x_max).contains(&x) {
            return 0.0;
        }
        self.c * (-self.c * x).exp() / self.norm
    }
}

/// Linear quality `f(x) = x / x_max` — the "no diminishing returns" control
/// case (partial processing earns proportional quality).
#[derive(Debug, Clone, Copy)]
pub struct LinearQuality {
    x_max: f64,
}

impl LinearQuality {
    /// Creates a linear quality function saturating at `x_max`.
    ///
    /// # Panics
    /// Panics unless `x_max > 0` and finite.
    pub fn new(x_max: f64) -> Self {
        assert!(x_max.is_finite() && x_max > 0.0);
        LinearQuality { x_max }
    }
}

impl QualityFunction for LinearQuality {
    fn value(&self, x: f64) -> f64 {
        (x / self.x_max).clamp(0.0, 1.0)
    }

    fn x_max(&self) -> f64 {
        self.x_max
    }

    fn inverse(&self, q: f64) -> f64 {
        q.clamp(0.0, 1.0) * self.x_max
    }

    fn marginal(&self, x: f64) -> f64 {
        if (0.0..=self.x_max).contains(&x) {
            1.0 / self.x_max
        } else {
            0.0
        }
    }
}

/// Power-law quality `f(x) = (x/x_max)^γ` with `0 < γ ≤ 1` — an alternate
/// concave family used to check that conclusions do not hinge on Eq. 1's
/// specific shape ("taking different concave quality functions would not
/// change the conclusion", paper §IV-B).
#[derive(Debug, Clone, Copy)]
pub struct PowerLawQuality {
    gamma: f64,
    x_max: f64,
}

impl PowerLawQuality {
    /// Creates `f(x) = (x/x_max)^γ`.
    ///
    /// # Panics
    /// Panics unless `0 < γ ≤ 1` (concavity) and `x_max > 0`.
    pub fn new(gamma: f64, x_max: f64) -> Self {
        assert!(
            gamma > 0.0 && gamma <= 1.0,
            "gamma must be in (0,1] for concavity, got {gamma}"
        );
        assert!(x_max.is_finite() && x_max > 0.0);
        PowerLawQuality { gamma, x_max }
    }
}

impl QualityFunction for PowerLawQuality {
    fn value(&self, x: f64) -> f64 {
        (x.clamp(0.0, self.x_max) / self.x_max).powf(self.gamma)
    }

    fn x_max(&self) -> f64 {
        self.x_max
    }

    fn inverse(&self, q: f64) -> f64 {
        q.clamp(0.0, 1.0).powf(1.0 / self.gamma) * self.x_max
    }
}

/// Logarithmic quality `f(x) = ln(1 + k·x) / ln(1 + k·x_max)` — a heavier
/// tail of diminishing returns than Eq. 1 (quality keeps creeping up
/// instead of saturating exponentially). Models services whose marginal
/// value decays polynomially, e.g. recommendation lists.
#[derive(Debug, Clone, Copy)]
pub struct LogQuality {
    k: f64,
    x_max: f64,
    norm: f64,
}

impl LogQuality {
    /// Creates `f(x) = ln(1 + k·x)/ln(1 + k·x_max)`.
    ///
    /// # Panics
    /// Panics unless `k > 0` and `x_max > 0`, both finite.
    pub fn new(k: f64, x_max: f64) -> Self {
        assert!(k.is_finite() && k > 0.0, "k must be positive, got {k}");
        assert!(x_max.is_finite() && x_max > 0.0);
        LogQuality {
            k,
            x_max,
            norm: (1.0 + k * x_max).ln(),
        }
    }
}

impl QualityFunction for LogQuality {
    fn value(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, self.x_max);
        (1.0 + self.k * x).ln() / self.norm
    }

    fn x_max(&self) -> f64 {
        self.x_max
    }

    /// Closed-form inverse: `x = (e^{q·norm} − 1)/k`.
    fn inverse(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        (((q * self.norm).exp() - 1.0) / self.k).clamp(0.0, self.x_max)
    }

    fn marginal(&self, x: f64) -> f64 {
        if !(0.0..=self.x_max).contains(&x) {
            return 0.0;
        }
        self.k / ((1.0 + self.k * x) * self.norm)
    }
}

/// A piecewise-linear concave quality function through user-supplied
/// knots — lets downstream users encode *measured* quality curves (e.g.
/// search-relevance-vs-documents-scanned profiles) instead of a
/// parametric family.
#[derive(Debug, Clone)]
pub struct PiecewiseLinearQuality {
    /// Knots `(x, q)`, strictly increasing in `x`, starting at `(0, 0)`
    /// and ending at `(x_max, 1)`.
    knots: Vec<(f64, f64)>,
}

impl PiecewiseLinearQuality {
    /// Builds the function from knots.
    ///
    /// # Panics
    /// Panics unless the knots start at `(0, 0)`, end with quality 1, are
    /// strictly increasing in `x`, non-decreasing in `q`, and have
    /// non-increasing slopes (concavity).
    pub fn new(knots: Vec<(f64, f64)>) -> Self {
        assert!(knots.len() >= 2, "need at least two knots");
        assert!(
            knots[0] == (0.0, 0.0),
            "first knot must be (0, 0), got {:?}",
            knots[0]
        );
        let last = knots[knots.len() - 1];
        assert!(
            (last.1 - 1.0).abs() < 1e-12,
            "last knot must reach quality 1, got {last:?}"
        );
        let mut prev_slope = f64::INFINITY;
        for w in knots.windows(2) {
            let (x0, q0) = w[0];
            let (x1, q1) = w[1];
            assert!(x1 > x0, "knot x must strictly increase");
            assert!(q1 >= q0, "knot quality must not decrease");
            let slope = (q1 - q0) / (x1 - x0);
            assert!(
                slope <= prev_slope + 1e-12,
                "slopes must be non-increasing (concavity)"
            );
            prev_slope = slope;
        }
        PiecewiseLinearQuality { knots }
    }
}

impl QualityFunction for PiecewiseLinearQuality {
    fn value(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, self.x_max());
        for w in self.knots.windows(2) {
            let (x0, q0) = w[0];
            let (x1, q1) = w[1];
            if x <= x1 {
                return q0 + (q1 - q0) * (x - x0) / (x1 - x0);
            }
        }
        1.0
    }

    fn x_max(&self) -> f64 {
        self.knots[self.knots.len() - 1].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariants(f: &dyn QualityFunction) {
        assert!(f.value(0.0).abs() < 1e-12, "f(0) must be 0");
        assert!(
            (f.value(f.x_max()) - 1.0).abs() < 1e-12,
            "f(x_max) must be 1"
        );
        // Monotone + concave on a grid.
        let n = 200;
        let mut prev = 0.0;
        let mut prev_slope = f64::INFINITY;
        for i in 1..=n {
            let x = f.x_max() * i as f64 / n as f64;
            let v = f.value(x);
            assert!(v >= prev - 1e-12, "not monotone at {x}");
            let slope = (v - prev) / (f.x_max() / n as f64);
            assert!(
                slope <= prev_slope + 1e-9,
                "not concave at {x}: slope {slope} > {prev_slope}"
            );
            prev = v;
            prev_slope = slope;
        }
    }

    #[test]
    fn exp_concave_invariants() {
        check_invariants(&ExpConcave::paper_default());
        check_invariants(&ExpConcave::new(0.0005, 1000.0));
        check_invariants(&ExpConcave::new(0.009, 1000.0));
    }

    #[test]
    fn linear_invariants() {
        check_invariants(&LinearQuality::new(1000.0));
    }

    #[test]
    fn power_law_invariants() {
        check_invariants(&PowerLawQuality::new(0.5, 1000.0));
        check_invariants(&PowerLawQuality::new(1.0, 1000.0));
    }

    #[test]
    fn paper_value_spot_check() {
        // f(192) with c = 0.003, x_max = 1000:
        // (1 − e^{−0.576}) / (1 − e^{−3}) ≈ 0.4379 / 0.9502 ≈ 0.4608.
        let f = ExpConcave::paper_default();
        assert!((f.value(192.0) - 0.4608).abs() < 5e-4, "{}", f.value(192.0));
    }

    #[test]
    fn closed_form_inverse_matches_value() {
        let f = ExpConcave::paper_default();
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let x = f.inverse(q);
            assert!((f.value(x) - q).abs() < 1e-9, "inverse broken at q={q}");
        }
    }

    #[test]
    fn default_bisection_inverse_matches_closed_form() {
        // Exercise the trait's default binary-search inverse against the
        // closed-form override, via a wrapper that hides the override.
        struct Hidden(ExpConcave);
        impl QualityFunction for Hidden {
            fn value(&self, x: f64) -> f64 {
                self.0.value(x)
            }
            fn x_max(&self) -> f64 {
                self.0.x_max()
            }
        }
        let f = ExpConcave::paper_default();
        let h = Hidden(f);
        for i in 1..100 {
            let q = i as f64 / 100.0;
            assert!(
                (h.inverse(q) - f.inverse(q)).abs() < 1e-6,
                "bisection disagrees at q={q}"
            );
        }
    }

    #[test]
    fn inverse_memo_is_bit_exact_and_hits() {
        let f = ExpConcave::paper_default();
        let mut memo = InverseMemo::new();
        // First pass: all misses, values bit-identical to direct calls.
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            assert_eq!(memo.inverse(&f, q).to_bits(), f.inverse(q).to_bits());
        }
        let (hits_before, misses) = memo.stats();
        assert_eq!(hits_before, 0);
        assert_eq!(misses, 101);
        // Second pass over the same targets: mostly served from the memo
        // (direct-mapped slots may collide and evict), still bit-identical.
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            assert_eq!(memo.inverse(&f, q).to_bits(), f.inverse(q).to_bits());
        }
        let (hits_after, _) = memo.stats();
        assert!(hits_after > 50, "expected mostly hits, got {hits_after}");
        // A repeated identical query is always a hit.
        let (h0, _) = memo.stats();
        memo.inverse(&f, 0.5);
        memo.inverse(&f, 0.5);
        let (h1, _) = memo.stats();
        assert!(h1 > h0);
    }

    #[test]
    fn inverse_memo_distinguishes_colliding_slots() {
        // Two targets that map to the same slot must not alias: the key
        // check is on the full bit pattern, so a conflict evicts rather
        // than mis-serves.
        let f = ExpConcave::paper_default();
        let mut memo = InverseMemo::new();
        for i in 0..10_000 {
            let q = (i % 997) as f64 / 997.0;
            assert_eq!(memo.inverse(&f, q).to_bits(), f.inverse(q).to_bits());
        }
    }

    #[test]
    fn marginal_is_decreasing_exp() {
        let f = ExpConcave::paper_default();
        let mut prev = f64::INFINITY;
        for i in 0..=20 {
            let x = 50.0 * i as f64;
            let m = f.marginal(x);
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    #[test]
    fn marginal_closed_form_matches_numeric() {
        struct Hidden(ExpConcave);
        impl QualityFunction for Hidden {
            fn value(&self, x: f64) -> f64 {
                self.0.value(x)
            }
            fn x_max(&self) -> f64 {
                self.0.x_max()
            }
        }
        let f = ExpConcave::paper_default();
        let h = Hidden(f);
        for x in [10.0, 100.0, 500.0, 900.0] {
            assert!(
                (f.marginal(x) - h.marginal(x)).abs() < 1e-6,
                "marginal mismatch at {x}"
            );
        }
    }

    #[test]
    fn values_clamped_outside_domain() {
        let f = ExpConcave::paper_default();
        assert_eq!(f.value(-10.0), 0.0);
        assert!((f.value(5000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concavity_ordering_matches_fig9b() {
        // Fig. 9b: at the same x, larger c gives higher quality.
        let x = 300.0;
        let mut prev = 0.0;
        for c in [0.0005, 0.001, 0.002, 0.003, 0.005, 0.009] {
            let f = ExpConcave::new(c, 1000.0);
            let v = f.value(x);
            assert!(v > prev, "quality should increase with c at fixed x");
            prev = v;
        }
    }

    #[test]
    #[should_panic]
    fn bad_gamma_panics() {
        let _ = PowerLawQuality::new(1.5, 100.0);
    }
}

#[cfg(test)]
mod generative_tests {
    use super::*;
    use ge_simcore::RngStream;

    #[test]
    fn exp_inverse_round_trip() {
        for seed in 0..256u64 {
            let mut rng = RngStream::from_root(seed, "fn/exp-inv");
            let c = rng.uniform_range(1e-4, 1e-2);
            let q = rng.uniform01();
            let f = ExpConcave::new(c, 1000.0);
            let x = f.inverse(q);
            assert!((f.value(x) - q).abs() < 1e-8);
        }
    }

    #[test]
    fn exp_monotone() {
        for seed in 0..256u64 {
            let mut rng = RngStream::from_root(seed, "fn/mono");
            let c = rng.uniform_range(1e-4, 1e-2);
            let a = rng.uniform_range(0.0, 1000.0);
            let b = rng.uniform_range(0.0, 1000.0);
            let f = ExpConcave::new(c, 1000.0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            assert!(f.value(lo) <= f.value(hi) + 1e-12);
        }
    }

    #[test]
    fn exp_concave_midpoint() {
        // Concavity: f((a+b)/2) >= (f(a)+f(b))/2.
        for seed in 0..256u64 {
            let mut rng = RngStream::from_root(seed, "fn/concave");
            let c = rng.uniform_range(1e-4, 1e-2);
            let a = rng.uniform_range(0.0, 1000.0);
            let b = rng.uniform_range(0.0, 1000.0);
            let f = ExpConcave::new(c, 1000.0);
            let mid = 0.5 * (a + b);
            assert!(f.value(mid) >= 0.5 * (f.value(a) + f.value(b)) - 1e-12);
        }
    }

    #[test]
    fn power_law_inverse_round_trip() {
        for seed in 0..256u64 {
            let mut rng = RngStream::from_root(seed, "fn/pow-inv");
            let g = rng.uniform_range(0.1, 1.0);
            let q = rng.uniform01();
            let f = PowerLawQuality::new(g, 500.0);
            let x = f.inverse(q);
            assert!((f.value(x) - q).abs() < 1e-8);
        }
    }
}

#[cfg(test)]
mod extended_family_tests {
    use super::*;

    #[test]
    fn log_quality_invariants() {
        let f = LogQuality::new(0.01, 1000.0);
        assert!(f.value(0.0).abs() < 1e-12);
        assert!((f.value(1000.0) - 1.0).abs() < 1e-12);
        // Inverse round trip.
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            assert!((f.value(f.inverse(q)) - q).abs() < 1e-9, "q={q}");
        }
        // Concavity via marginal decrease.
        assert!(f.marginal(10.0) > f.marginal(500.0));
    }

    #[test]
    fn piecewise_linear_interpolation() {
        let f = PiecewiseLinearQuality::new(vec![
            (0.0, 0.0),
            (100.0, 0.6),
            (500.0, 0.9),
            (1000.0, 1.0),
        ]);
        assert_eq!(f.x_max(), 1000.0);
        assert!((f.value(50.0) - 0.3).abs() < 1e-12);
        assert!((f.value(100.0) - 0.6).abs() < 1e-12);
        assert!((f.value(300.0) - 0.75).abs() < 1e-12);
        assert!((f.value(2000.0) - 1.0).abs() < 1e-12);
        assert_eq!(f.value(-5.0), 0.0);
    }

    #[test]
    fn piecewise_default_inverse_works() {
        let f = PiecewiseLinearQuality::new(vec![(0.0, 0.0), (200.0, 0.8), (1000.0, 1.0)]);
        for i in 1..20 {
            let q = i as f64 / 20.0;
            let x = f.inverse(q);
            assert!((f.value(x) - q).abs() < 1e-6, "bisection inverse at q={q}");
        }
    }

    #[test]
    fn lf_cut_works_with_extended_families() {
        use crate::cut::lf_cut;
        let demands = [900.0, 400.0, 150.0];
        let f = LogQuality::new(0.02, 1000.0);
        let out = lf_cut(&f, &demands, 0.85);
        assert!((out.achieved_quality - 0.85).abs() < 1e-6);

        let f = PiecewiseLinearQuality::new(vec![(0.0, 0.0), (300.0, 0.7), (1000.0, 1.0)]);
        let out = lf_cut(&f, &demands, 0.85);
        assert!((out.achieved_quality - 0.85).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn non_concave_knots_rejected() {
        // Slope increases from 0.0005 to 0.0015: convex, must panic.
        let _ = PiecewiseLinearQuality::new(vec![(0.0, 0.0), (500.0, 0.25), (1000.0, 1.0)]);
    }

    #[test]
    #[should_panic]
    fn knots_not_starting_at_origin_rejected() {
        let _ = PiecewiseLinearQuality::new(vec![(10.0, 0.0), (1000.0, 1.0)]);
    }
}
