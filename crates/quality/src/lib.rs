//! # ge-quality — concave quality functions and quality-driven allocation
//!
//! "Good enough" services return usable results from partial processing:
//! running `c ≤ p` units of a job worth `p` units yields perceived quality
//! `f(c)`, where `f` is concave (diminishing returns — paper §II-A). This
//! crate holds everything quality-related:
//!
//! * [`QualityFunction`] and implementations — [`ExpConcave`] is the
//!   paper's Eq. 1, `f(x) = (1 − e^{−c·x})/(1 − e^{−c·x_max})`; linear and
//!   power-law alternates support the Fig. 9 sensitivity study and tests.
//! * [`ledger::QualityLedger`] — the online quality monitor driving the GE
//!   compensation policy: tracks `Q = Σ f(c_j) / Σ f(p_j)` over finished
//!   jobs, cumulatively or over a sliding window.
//! * [`cut`] — the **Longest-First (LF) job-cutting policy** (paper
//!   §III-B): level the longest jobs down until the batch quality meets the
//!   good-enough target exactly, finishing with a binary-search solve on
//!   the concave quality function.
//! * [`qopt`] — the **Quality-OPT** allocator (paper §III-E, citing He et
//!   al.'s Tians scheduler): maximize total quality under a processing
//!   volume budget. For a common concave `f` this is exact level-filling.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cut;
pub mod function;
pub mod ledger;
pub mod qopt;

pub use cut::{lf_cut, lf_cut_with, CutOutcome, CutScratch};
pub use function::{
    ExpConcave, InverseMemo, LinearQuality, LogQuality, PiecewiseLinearQuality, PowerLawQuality,
    QualityFunction,
};
pub use ledger::{LedgerMode, QualityLedger};
pub use qopt::{level_fill, prefix_level_fill, LevelFill};
