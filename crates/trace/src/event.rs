//! Typed trace events — one variant per decision the scheduler makes.
//!
//! Events are plain data: every field is a number, a short enum, or (for
//! [`TraceEvent::RunStart`] only) a string, so the exporters in
//! [`crate::export`] can serialize them without reflection or serde. The
//! `t` field is simulation time in seconds; events are emitted in
//! non-decreasing `t` order by the driver.

/// Which trigger woke the scheduler (paper §III-B control policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// The periodic quantum timer fired.
    Quantum,
    /// A core went idle (work-conserving wake-up).
    IdleCore,
    /// The pending-arrivals counter crossed its threshold.
    Counter,
    /// A fault transition (core loss/recovery, budget throttle) forced a
    /// replan outside the normal trigger set.
    Fault,
}

impl TriggerKind {
    /// Stable wire name of the trigger kind.
    pub fn as_str(self) -> &'static str {
        match self {
            TriggerKind::Quantum => "quantum",
            TriggerKind::IdleCore => "idle_core",
            TriggerKind::Counter => "counter",
            TriggerKind::Fault => "fault",
        }
    }

    /// Parses a wire name produced by [`TriggerKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "quantum" => Some(TriggerKind::Quantum),
            "idle_core" => Some(TriggerKind::IdleCore),
            "counter" => Some(TriggerKind::Counter),
            "fault" => Some(TriggerKind::Fault),
            _ => None,
        }
    }
}

/// Which power-distribution policy an epoch used (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Equal sharing — each busy core gets `budget / cores`.
    EqualShare,
    /// Water-filling — demand-proportional caps up to a common level.
    WaterFilling,
}

impl SplitPolicy {
    /// Stable wire name of the policy.
    pub fn as_str(self) -> &'static str {
        match self {
            SplitPolicy::EqualShare => "equal_share",
            SplitPolicy::WaterFilling => "water_filling",
        }
    }

    /// Parses a wire name produced by [`SplitPolicy::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "equal_share" => Some(SplitPolicy::EqualShare),
            "water_filling" => Some(SplitPolicy::WaterFilling),
            _ => None,
        }
    }
}

/// Why the serving front end refused a request (`ge-serve` traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Backpressure: the ingress queue was above its high watermark (the
    /// wire analogue of HTTP 429).
    Busy,
    /// The armed quality floor was in danger: admitting more work would
    /// push ledger quality below `q_min`.
    Floor,
    /// The server was draining for shutdown and no longer admits work.
    Draining,
}

impl RejectReason {
    /// Stable wire name of the rejection reason.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::Busy => "busy",
            RejectReason::Floor => "floor",
            RejectReason::Draining => "draining",
        }
    }

    /// Parses a wire name produced by [`RejectReason::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "busy" => Some(RejectReason::Busy),
            "floor" => Some(RejectReason::Floor),
            "draining" => Some(RejectReason::Draining),
            _ => None,
        }
    }
}

/// One structured observation from a simulation run.
///
/// The variants cover the full decision surface of the GE algorithm:
/// arrival/assignment (C-RR), trigger firings, AES↔BQ mode transitions
/// (with the ledger value that caused them), LF-cut levels and per-job
/// cut amounts, ES/WF selection with the load estimate, per-core caps,
/// Quality-OPT second cuts, YDS speed segments, per-slice energy, job
/// completions, periodic quality samples, and run bracketing events.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Run provenance header, emitted (at most once) as the very first
    /// line of a trace. Unlike [`TraceEvent::RunStart`] it carries no
    /// simulation state — only enough metadata to tell which binary and
    /// which inputs produced the file. Replay validates it when present;
    /// headerless traces remain valid for compatibility.
    RunMeta {
        /// Simulation time (always `0.0`).
        t: f64,
        /// Wire-schema tag (currently `"ge-trace/v1"`).
        schema: String,
        /// Workload seed the run was driven with.
        seed: u64,
        /// FNV-1a digest of the serialized run configuration.
        config_digest: u64,
        /// Workspace crate version that wrote the trace.
        version: String,
    },
    /// Run configuration, emitted once before any other event. Carries
    /// everything replay needs to rebuild the run's bookkeeping.
    RunStart {
        /// Simulation time of the run start (always `0.0`).
        t: f64,
        /// Human-readable algorithm label (e.g. `"GE"`, `"OQ"`).
        algorithm: String,
        /// Number of cores.
        cores: u64,
        /// Server-wide power budget in watts.
        budget_w: f64,
        /// Target batch quality `Q_GE`.
        q_ge: f64,
        /// Simulation horizon in seconds.
        horizon_s: f64,
        /// Static coefficient `a` of the power model `P(s) = a + s^β`.
        power_a: f64,
        /// Exponent `β` of the power model.
        power_beta: f64,
        /// Concavity `c` of the exponential quality function.
        quality_c: f64,
        /// Saturation point `x_max` of the quality function.
        quality_xmax: f64,
        /// Work units one GHz-second of compute retires.
        units_per_ghz_sec: f64,
        /// Mode at `t = 0` (`0` = AES, `1` = BQ).
        initial_mode: u64,
        /// Sliding-window length of the quality ledger (`0` = cumulative).
        ledger_window: u64,
    },
    /// A job entered the system.
    JobArrival {
        /// Event time in seconds.
        t: f64,
        /// Job identifier.
        job: u64,
        /// Absolute deadline in seconds.
        deadline_s: f64,
        /// Full processing demand in work units.
        demand: f64,
    },
    /// C-RR (or a baseline) bound a job to a core.
    JobAssigned {
        /// Event time in seconds.
        t: f64,
        /// Job identifier.
        job: u64,
        /// Destination core index.
        core: u64,
    },
    /// A scheduling trigger fired and an epoch began.
    TriggerFired {
        /// Event time in seconds.
        t: f64,
        /// Which trigger fired.
        kind: TriggerKind,
        /// Jobs waiting in the global queue when it fired.
        queue_len: u64,
    },
    /// The controller moved between AES and BQ modes.
    ModeSwitch {
        /// Event time in seconds.
        t: f64,
        /// Mode before the switch (`0` = AES, `1` = BQ).
        from_mode: u64,
        /// Mode after the switch.
        to_mode: u64,
        /// Ledger quality that triggered the decision.
        ledger_quality: f64,
    },
    /// An LF cut levelled the epoch's batch to a common demand level.
    LfCut {
        /// Event time in seconds.
        t: f64,
        /// The common level `L` every longer job was cut to.
        level: f64,
        /// Batch quality the cut was solved for.
        target_quality: f64,
        /// Jobs in the cut batch.
        jobs: u64,
        /// Total volume before the cut (work units).
        volume_before: f64,
        /// Total volume retained after the cut.
        volume_after: f64,
    },
    /// One job's share of an LF cut (only jobs actually shortened).
    JobCut {
        /// Event time in seconds.
        t: f64,
        /// Job identifier.
        job: u64,
        /// The job's full demand.
        full_demand: f64,
        /// Demand retained after the cut.
        cut_demand: f64,
    },
    /// The epoch chose a power-distribution policy.
    PowerSplit {
        /// Event time in seconds.
        t: f64,
        /// Equal sharing or water-filling.
        policy: SplitPolicy,
        /// Arrival-rate estimate that drove the choice (req/s).
        load_estimate_rps: f64,
        /// Budget being distributed (watts).
        budget_w: f64,
    },
    /// One core's power cap for the epoch.
    CoreCap {
        /// Event time in seconds.
        t: f64,
        /// Core index.
        core: u64,
        /// Power cap in watts.
        cap_w: f64,
        /// Speed the cap permits (GHz).
        speed_cap_ghz: f64,
    },
    /// A per-core Quality-OPT second cut shrank an infeasible plan.
    SecondCut {
        /// Event time in seconds.
        t: f64,
        /// Core index.
        core: u64,
        /// Core volume before the second cut.
        volume_before: f64,
        /// Core volume after.
        volume_after: f64,
    },
    /// One segment of a core's installed YDS speed profile.
    SpeedSegment {
        /// Event time in seconds (epoch time, not segment start).
        t: f64,
        /// Core index.
        core: u64,
        /// Segment start in seconds.
        start_s: f64,
        /// Segment end in seconds.
        end_s: f64,
        /// Planned speed over the segment (GHz).
        speed_ghz: f64,
    },
    /// Executed compute between two driver advances on one core.
    ExecSlice {
        /// Event time in seconds (the advance target).
        t: f64,
        /// Core index.
        core: u64,
        /// Slice start in seconds.
        start_s: f64,
        /// Slice end in seconds.
        end_s: f64,
        /// Compute volume retired (GHz·s).
        ghz_secs: f64,
        /// Energy spent over the slice (joules).
        energy_j: f64,
    },
    /// A job left the system (served or discarded), in ledger order.
    JobFinish {
        /// Event time in seconds.
        t: f64,
        /// Job identifier.
        job: u64,
        /// Work units actually processed.
        processed: f64,
        /// The job's full demand.
        full_demand: f64,
        /// Whether the job was discarded unserved (deadline expiry).
        discarded: bool,
    },
    /// Periodic sample of the controller state (one per epoch).
    QualitySample {
        /// Event time in seconds.
        t: f64,
        /// Ledger quality at the sample.
        quality: f64,
        /// Current mode (`0` = AES, `1` = BQ).
        mode: u64,
        /// Backlog volume across cores (work units).
        backlog_units: f64,
        /// Arrival-rate estimate (req/s).
        load_estimate_rps: f64,
    },
    /// A core failed or recovered (fault injection).
    CoreFault {
        /// Event time in seconds.
        t: f64,
        /// Core index.
        core: u64,
        /// `true` = the core just recovered, `false` = it just failed.
        online: bool,
    },
    /// The effective power budget was throttled (or restored).
    BudgetThrottle {
        /// Event time in seconds.
        t: f64,
        /// Multiplier applied to the nominal budget (1.0 = restored).
        factor: f64,
        /// The effective budget now in force (watts).
        budget_w_effective: f64,
    },
    /// DVFS actuation error changed on a core: delivered speed is now
    /// `factor ×` the requested speed.
    DvfsDeviation {
        /// Event time in seconds.
        t: f64,
        /// Core index.
        core: u64,
        /// Delivered-over-requested speed ratio (1.0 = nominal).
        factor: f64,
    },
    /// The scheduler was handed a noisy demand estimate for a job.
    DemandMisestimate {
        /// Event time in seconds (the job's arrival).
        t: f64,
        /// Job identifier.
        job: u64,
        /// The estimate the scheduler plans with.
        estimate: f64,
        /// The true demand execution will consume.
        full_demand: f64,
    },
    /// Admission control rejected a job to protect the quality floor.
    JobShed {
        /// Event time in seconds.
        t: f64,
        /// Job identifier.
        job: u64,
        /// The scheduler's demand estimate for the job.
        estimate: f64,
        /// The job's true full demand.
        full_demand: f64,
        /// Projected batch quality that triggered the shed.
        projected_quality: f64,
    },
    /// Fleet run configuration, emitted once before any other fleet
    /// event (`ge-fleet` traces only).
    FleetRunStart {
        /// Simulation time of the run start (always `0.0`).
        t: f64,
        /// Number of servers behind the router.
        servers: u64,
        /// Cores per server.
        cores: u64,
        /// Global power budget `H` split across servers (watts).
        budget_w: f64,
        /// Routing policy wire name (e.g. `"jsq"`).
        policy: String,
        /// Budget partitioner wire name (e.g. `"prop"`).
        partitioner: String,
        /// Root seed driving routing and dispatch-loss coins.
        seed: u64,
    },
    /// A whole server crashed or recovered (fleet fault injection).
    ShardFault {
        /// Event time in seconds.
        t: f64,
        /// Server (shard) index.
        shard: u64,
        /// `true` = the server just rejoined, `false` = it just crashed.
        online: bool,
    },
    /// The router handed a job to a server.
    FleetDispatch {
        /// Event time in seconds.
        t: f64,
        /// Job identifier.
        job: u64,
        /// Destination server index.
        shard: u64,
        /// Dispatch attempt (0 = first try).
        attempt: u64,
    },
    /// A dispatch attempt was lost; a bounded retry was scheduled.
    FleetRetry {
        /// Event time of the lost attempt in seconds.
        t: f64,
        /// Job identifier.
        job: u64,
        /// The attempt that was lost (the retry will be `attempt + 1`).
        attempt: u64,
        /// When the retry fires, in seconds.
        next_s: f64,
    },
    /// A dead server's queued-unstarted job was reclaimed for re-routing.
    FleetFailover {
        /// Event time (the crash instant) in seconds.
        t: f64,
        /// Job identifier.
        job: u64,
        /// The server the job was reclaimed from.
        shard: u64,
    },
    /// The router shed a job (no live server could take it within the
    /// quality floor, or its retry budget ran out).
    FleetShed {
        /// Event time in seconds.
        t: f64,
        /// Job identifier.
        job: u64,
        /// The job's full demand (work units).
        demand: f64,
    },
    /// One server's slice of a budget reallocation epoch. Emitted for
    /// every server at each epoch; slices at one timestamp sum to the
    /// global budget `H`.
    FleetBudget {
        /// Event time in seconds.
        t: f64,
        /// Server index.
        shard: u64,
        /// The server's allocated budget `H_i` (watts).
        budget_w: f64,
    },
    /// Final fleet aggregates, emitted once after all other fleet events.
    FleetSummary {
        /// Horizon time in seconds.
        t: f64,
        /// Successful router→server dispatches.
        dispatched: u64,
        /// Jobs reclaimed from dead servers.
        failovers: u64,
        /// Dispatch attempts lost and retried.
        retries: u64,
        /// Jobs the router shed.
        shed: u64,
        /// Total energy across all servers (joules).
        energy_j: f64,
        /// Fleet-wide delivered quality.
        quality: f64,
    },
    /// Serving-session configuration, emitted once before any other serve
    /// event (`ge-serve` traces only).
    ServeRunStart {
        /// Logical time of the session start (always `0.0`).
        t: f64,
        /// Human-readable algorithm label (e.g. `"GE"`).
        algorithm: String,
        /// Number of cores behind the front end.
        cores: u64,
        /// Server power budget in watts.
        budget_w: f64,
        /// Armed quality floor (`0` = disarmed).
        q_min: f64,
        /// Admission high watermark (in-flight depth that closes admission).
        queue_high: u64,
        /// Admission low watermark (in-flight depth that reopens admission).
        queue_low: u64,
    },
    /// A request arrived at the front end (before any admission decision).
    ServeRequest {
        /// Logical arrival time in seconds.
        t: f64,
        /// Request identifier (dense, assigned at ingress).
        req: u64,
        /// Requested processing demand in work units.
        demand: f64,
        /// Absolute logical deadline in seconds.
        deadline_s: f64,
    },
    /// Admission control accepted a request into the engine.
    ServeAdmit {
        /// Logical time in seconds.
        t: f64,
        /// Request identifier.
        req: u64,
        /// In-flight depth (admitted, not yet terminal) after the admit.
        queue_len: u64,
    },
    /// Admission control refused a request (terminal: rejected).
    ServeReject {
        /// Logical time in seconds.
        t: f64,
        /// Request identifier.
        req: u64,
        /// Why the request was refused.
        reason: RejectReason,
        /// In-flight depth at the decision.
        queue_len: u64,
    },
    /// An admitted request's deadline expired unserved (terminal:
    /// timed-out; the engine discards it and the quality ledger counts it
    /// in the denominator).
    ServeTimeout {
        /// Logical expiry time in seconds.
        t: f64,
        /// Request identifier.
        req: u64,
    },
    /// An admitted request finished with work done (terminal: completed —
    /// possibly partially, under a GE cut).
    ServeComplete {
        /// Logical completion time in seconds.
        t: f64,
        /// Request identifier.
        req: u64,
        /// Work units actually processed.
        processed: f64,
        /// The request's full demand.
        full_demand: f64,
    },
    /// The engine shed an admitted request under its quality floor
    /// (terminal: shed).
    ServeShed {
        /// Logical time in seconds.
        t: f64,
        /// Request identifier.
        req: u64,
    },
    /// Drain began: admission closed, in-flight work runs to a terminal
    /// state. No `ServeAdmit` may follow.
    ServeDrain {
        /// Logical time drain began, in seconds.
        t: f64,
        /// Requests admitted but not yet terminal at drain start.
        pending: u64,
    },
    /// Final serving-session aggregates, emitted once after all other
    /// serve events. Every request is exactly one of completed /
    /// rejected / shed / timed-out: the four counters sum to `requests`.
    ServeSummary {
        /// Logical time the books closed, in seconds.
        t: f64,
        /// Requests that reached the front end.
        requests: u64,
        /// Requests admitted into the engine.
        admitted: u64,
        /// Terminal: finished with work done.
        completed: u64,
        /// Terminal: refused at admission.
        rejected: u64,
        /// Terminal: deadline expired unserved.
        timed_out: u64,
        /// Terminal: shed by the engine's quality floor or at drain.
        shed: u64,
    },
    /// Final reported aggregates, emitted once after all other events.
    RunSummary {
        /// Horizon time in seconds.
        t: f64,
        /// Reported total energy (joules).
        energy_j: f64,
        /// Reported batch quality.
        quality: f64,
        /// Reported AES residency fraction.
        aes_fraction: f64,
        /// Jobs that left the system.
        jobs_finished: u64,
        /// Jobs discarded unserved.
        jobs_discarded: u64,
    },
}

impl TraceEvent {
    /// The event's simulation timestamp in seconds.
    pub fn t(&self) -> f64 {
        match self {
            TraceEvent::RunMeta { t, .. }
            | TraceEvent::RunStart { t, .. }
            | TraceEvent::JobArrival { t, .. }
            | TraceEvent::JobAssigned { t, .. }
            | TraceEvent::TriggerFired { t, .. }
            | TraceEvent::ModeSwitch { t, .. }
            | TraceEvent::LfCut { t, .. }
            | TraceEvent::JobCut { t, .. }
            | TraceEvent::PowerSplit { t, .. }
            | TraceEvent::CoreCap { t, .. }
            | TraceEvent::SecondCut { t, .. }
            | TraceEvent::SpeedSegment { t, .. }
            | TraceEvent::ExecSlice { t, .. }
            | TraceEvent::JobFinish { t, .. }
            | TraceEvent::QualitySample { t, .. }
            | TraceEvent::CoreFault { t, .. }
            | TraceEvent::BudgetThrottle { t, .. }
            | TraceEvent::DvfsDeviation { t, .. }
            | TraceEvent::DemandMisestimate { t, .. }
            | TraceEvent::JobShed { t, .. }
            | TraceEvent::FleetRunStart { t, .. }
            | TraceEvent::ShardFault { t, .. }
            | TraceEvent::FleetDispatch { t, .. }
            | TraceEvent::FleetRetry { t, .. }
            | TraceEvent::FleetFailover { t, .. }
            | TraceEvent::FleetShed { t, .. }
            | TraceEvent::FleetBudget { t, .. }
            | TraceEvent::FleetSummary { t, .. }
            | TraceEvent::ServeRunStart { t, .. }
            | TraceEvent::ServeRequest { t, .. }
            | TraceEvent::ServeAdmit { t, .. }
            | TraceEvent::ServeReject { t, .. }
            | TraceEvent::ServeTimeout { t, .. }
            | TraceEvent::ServeComplete { t, .. }
            | TraceEvent::ServeShed { t, .. }
            | TraceEvent::ServeDrain { t, .. }
            | TraceEvent::ServeSummary { t, .. }
            | TraceEvent::RunSummary { t, .. } => *t,
        }
    }

    /// Stable wire name of the event kind (the JSONL `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunMeta { .. } => "run_meta",
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::JobArrival { .. } => "job_arrival",
            TraceEvent::JobAssigned { .. } => "job_assigned",
            TraceEvent::TriggerFired { .. } => "trigger",
            TraceEvent::ModeSwitch { .. } => "mode_switch",
            TraceEvent::LfCut { .. } => "lf_cut",
            TraceEvent::JobCut { .. } => "job_cut",
            TraceEvent::PowerSplit { .. } => "power_split",
            TraceEvent::CoreCap { .. } => "core_cap",
            TraceEvent::SecondCut { .. } => "second_cut",
            TraceEvent::SpeedSegment { .. } => "speed_segment",
            TraceEvent::ExecSlice { .. } => "exec_slice",
            TraceEvent::JobFinish { .. } => "job_finish",
            TraceEvent::QualitySample { .. } => "quality_sample",
            TraceEvent::CoreFault { .. } => "core_fault",
            TraceEvent::BudgetThrottle { .. } => "budget_throttle",
            TraceEvent::DvfsDeviation { .. } => "dvfs_deviation",
            TraceEvent::DemandMisestimate { .. } => "demand_misestimate",
            TraceEvent::JobShed { .. } => "job_shed",
            TraceEvent::FleetRunStart { .. } => "fleet_run_start",
            TraceEvent::ShardFault { .. } => "shard_fault",
            TraceEvent::FleetDispatch { .. } => "fleet_dispatch",
            TraceEvent::FleetRetry { .. } => "fleet_retry",
            TraceEvent::FleetFailover { .. } => "fleet_failover",
            TraceEvent::FleetShed { .. } => "fleet_shed",
            TraceEvent::FleetBudget { .. } => "fleet_budget",
            TraceEvent::FleetSummary { .. } => "fleet_summary",
            TraceEvent::ServeRunStart { .. } => "serve_run_start",
            TraceEvent::ServeRequest { .. } => "serve_request",
            TraceEvent::ServeAdmit { .. } => "serve_admit",
            TraceEvent::ServeReject { .. } => "serve_reject",
            TraceEvent::ServeTimeout { .. } => "serve_timeout",
            TraceEvent::ServeComplete { .. } => "serve_complete",
            TraceEvent::ServeShed { .. } => "serve_shed",
            TraceEvent::ServeDrain { .. } => "serve_drain",
            TraceEvent::ServeSummary { .. } => "serve_summary",
            TraceEvent::RunSummary { .. } => "run_summary",
        }
    }

    /// Whether the event is high-frequency (per-slice / per-job volume).
    ///
    /// Sampling sinks thin only these; structural events (run bracketing,
    /// mode switches, triggers, power splits) are always retained.
    pub fn is_high_frequency(&self) -> bool {
        matches!(
            self,
            TraceEvent::JobArrival { .. }
                | TraceEvent::JobAssigned { .. }
                | TraceEvent::JobCut { .. }
                | TraceEvent::SpeedSegment { .. }
                | TraceEvent::ExecSlice { .. }
                | TraceEvent::JobFinish { .. }
                | TraceEvent::DemandMisestimate { .. }
                | TraceEvent::FleetDispatch { .. }
                | TraceEvent::ServeRequest { .. }
                | TraceEvent::ServeAdmit { .. }
                | TraceEvent::ServeComplete { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_time_accessors() {
        let e = TraceEvent::ModeSwitch {
            t: 2.5,
            from_mode: 1,
            to_mode: 0,
            ledger_quality: 0.93,
        };
        assert_eq!(e.kind(), "mode_switch");
        assert_eq!(e.t(), 2.5);
        assert!(!e.is_high_frequency());
        let s = TraceEvent::ExecSlice {
            t: 1.0,
            core: 3,
            start_s: 0.5,
            end_s: 1.0,
            ghz_secs: 0.4,
            energy_j: 2.0,
        };
        assert!(s.is_high_frequency());
    }

    #[test]
    fn enum_wire_names_round_trip() {
        for k in [
            TriggerKind::Quantum,
            TriggerKind::IdleCore,
            TriggerKind::Counter,
        ] {
            assert_eq!(TriggerKind::parse(k.as_str()), Some(k));
        }
        for p in [SplitPolicy::EqualShare, SplitPolicy::WaterFilling] {
            assert_eq!(SplitPolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(TriggerKind::parse("nope"), None);
    }
}
