//! Trace sinks — where emitted events go.
//!
//! Instrumented code guards every emission with [`TraceSink::is_enabled`]
//! so the disabled path costs one virtual call and a branch, never an
//! event construction:
//!
//! ```
//! use ge_trace::{NullSink, TraceEvent, TraceSink};
//!
//! fn hot_path(sink: &mut dyn TraceSink) {
//!     if sink.is_enabled() {
//!         sink.record(&TraceEvent::TriggerFired {
//!             t: 0.0,
//!             kind: ge_trace::TriggerKind::Quantum,
//!             queue_len: 0,
//!         });
//!     }
//! }
//! hot_path(&mut NullSink);
//! ```

use crate::event::TraceEvent;
use std::collections::VecDeque;

/// Receiver of structured trace events.
///
/// Implementations must be cheap to call; the driver invokes
/// [`TraceSink::record`] from every scheduling epoch and core advance.
pub trait TraceSink {
    /// Whether emission sites should construct and record events at all.
    ///
    /// The default is `true`; [`NullSink`] overrides it to `false` so the
    /// untraced hot path skips event construction entirely.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Records one event. Events arrive in non-decreasing time order.
    fn record(&mut self, event: &TraceEvent);
}

/// The no-op sink: reports itself disabled and drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &TraceEvent) {}
}

/// An unbounded in-memory sink retaining every event, in order.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// A bounded ring-buffer sink with optional sampling of high-frequency
/// events.
///
/// Structural events (run bracketing, mode switches, triggers, power
/// splits, cuts) are always retained; high-frequency events
/// ([`TraceEvent::is_high_frequency`]) are kept only every
/// `sample_every`-th occurrence. When the buffer is full the oldest
/// event is evicted, so the sink holds the *tail* of the run — the right
/// default for flight-recorder style debugging at production scale.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    sample_every: u64,
    hf_seen: u64,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring sink retaining at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            sample_every: 1,
            hf_seen: 0,
            dropped: 0,
        }
    }

    /// Keeps only every `every`-th high-frequency event.
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn with_sampling(mut self, every: u64) -> Self {
        assert!(every > 0, "sampling period must be positive");
        self.sample_every = every;
        self
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Consumes the sink, returning retained events oldest-first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into_iter().collect()
    }

    /// Events not retained (sampled out or evicted by the ring).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if event.is_high_frequency() {
            self.hf_seen += 1;
            if self.hf_seen % self.sample_every != 0 {
                self.dropped += 1;
                return;
            }
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(t: f64) -> TraceEvent {
        TraceEvent::ExecSlice {
            t,
            core: 0,
            start_s: t - 0.1,
            end_s: t,
            ghz_secs: 0.1,
            energy_j: 1.0,
        }
    }

    fn switch(t: f64) -> TraceEvent {
        TraceEvent::ModeSwitch {
            t,
            from_mode: 1,
            to_mode: 0,
            ledger_quality: 0.95,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.is_enabled());
        s.record(&slice(1.0));
    }

    #[test]
    fn vec_sink_retains_everything_in_order() {
        let mut s = VecSink::new();
        for i in 0..10 {
            s.record(&slice(i as f64));
        }
        assert_eq!(s.events().len(), 10);
        assert_eq!(s.events()[3].t(), 3.0);
    }

    #[test]
    fn ring_sink_bounds_and_keeps_tail() {
        let mut s = RingSink::new(4);
        for i in 0..10 {
            s.record(&slice(i as f64));
        }
        let kept: Vec<f64> = s.events().map(|e| e.t()).collect();
        assert_eq!(kept, vec![6.0, 7.0, 8.0, 9.0]);
        assert_eq!(s.dropped(), 6);
    }

    #[test]
    fn sampling_thins_high_frequency_but_keeps_structural() {
        let mut s = RingSink::new(100).with_sampling(3);
        for i in 0..9 {
            s.record(&slice(i as f64));
        }
        s.record(&switch(9.0));
        s.record(&switch(9.5));
        // 9 slices sampled 1-in-3 => 3 kept; both switches kept.
        let kinds: Vec<&str> = s.events().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "exec_slice",
                "exec_slice",
                "exec_slice",
                "mode_switch",
                "mode_switch"
            ]
        );
    }
}
