//! Trace replay and invariant checking.
//!
//! A trace is self-contained: [`crate::TraceEvent::RunStart`] carries the
//! run configuration, so the checker can rebuild the run's bookkeeping
//! from scratch — energy by summing [`crate::TraceEvent::ExecSlice`]
//! through a fresh [`ge_power::EnergyMeter`], AES residency by feeding
//! [`crate::TraceEvent::ModeSwitch`] through [`ge_metrics::ModeTracker`],
//! and quality by feeding [`crate::TraceEvent::JobFinish`] through
//! [`ge_quality::QualityLedger`] — and cross-check each against the
//! driver's reported [`crate::TraceEvent::RunSummary`].

use crate::event::TraceEvent;
use ge_metrics::ModeTracker;
use ge_power::EnergyMeter;
use ge_quality::{ExpConcave, LedgerMode, QualityFunction, QualityLedger};
use ge_simcore::SimTime;
use std::collections::BTreeMap;

/// Tolerance for the relative energy-conservation check.
pub const ENERGY_REL_TOL: f64 = 1e-6;
/// Tolerance for the absolute AES-residency check.
pub const AES_ABS_TOL: f64 = 1e-9;
/// Tolerance for the absolute quality-rebuild check.
pub const QUALITY_ABS_TOL: f64 = 1e-9;

/// Wire-schema tag a [`TraceEvent::RunMeta`] header must carry for this
/// replay implementation to accept the trace.
pub const TRACE_SCHEMA: &str = "ge-trace/v1";

/// A structurally invalid trace (replay could not even start).
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The trace was empty.
    Empty,
    /// A `run_meta` header was present but unusable (wrong schema tag or
    /// a nonzero timestamp).
    BadHeader(String),
    /// The first event was not `run_start`.
    MissingRunStart,
    /// No `run_summary` event was found.
    MissingRunSummary,
    /// The first event of a fleet trace was not `fleet_run_start`.
    MissingFleetRunStart,
    /// No `fleet_summary` event was found.
    MissingFleetSummary,
    /// The first event of a serve trace was not `serve_run_start`.
    MissingServeRunStart,
    /// No `serve_summary` event was found.
    MissingServeSummary,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Empty => write!(f, "empty trace"),
            ReplayError::BadHeader(why) => write!(f, "invalid run_meta header: {why}"),
            ReplayError::MissingRunStart => {
                write!(f, "trace does not begin with a run_start event")
            }
            ReplayError::MissingRunSummary => {
                write!(f, "trace has no run_summary event")
            }
            ReplayError::MissingFleetRunStart => {
                write!(f, "fleet trace does not begin with a fleet_run_start event")
            }
            ReplayError::MissingFleetSummary => {
                write!(f, "fleet trace has no fleet_summary event")
            }
            ReplayError::MissingServeRunStart => {
                write!(f, "serve trace does not begin with a serve_run_start event")
            }
            ReplayError::MissingServeSummary => {
                write!(f, "serve trace has no serve_summary event")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Outcome of replaying a trace and cross-checking its invariants.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Total events replayed.
    pub events: usize,
    /// Energy rebuilt by summing `exec_slice` events (joules).
    pub energy_from_slices_j: f64,
    /// Energy the run reported in `run_summary`.
    pub reported_energy_j: f64,
    /// Relative error between rebuilt and reported energy.
    pub energy_rel_err: f64,
    /// AES residency rebuilt from `mode_switch` events.
    pub aes_residency: f64,
    /// AES residency the run reported.
    pub reported_aes: f64,
    /// Quality rebuilt from `job_finish` events through the ledger.
    pub quality_rebuilt: f64,
    /// Quality the run reported.
    pub reported_quality: f64,
    /// Jobs the trace reports as shed by admission control.
    pub shed_jobs: usize,
    /// Every invariant violation found (empty when the trace is clean).
    pub issues: Vec<String>,
}

impl ReplayReport {
    /// Whether every invariant held.
    pub fn is_ok(&self) -> bool {
        self.issues.is_empty()
    }

    /// A short human-readable verdict block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("replayed {} events\n", self.events));
        out.push_str(&format!(
            "energy    rebuilt {:.6} J vs reported {:.6} J (rel err {:.3e})\n",
            self.energy_from_slices_j, self.reported_energy_j, self.energy_rel_err
        ));
        out.push_str(&format!(
            "aes       rebuilt {:.9} vs reported {:.9}\n",
            self.aes_residency, self.reported_aes
        ));
        out.push_str(&format!(
            "quality   rebuilt {:.9} vs reported {:.9}\n",
            self.quality_rebuilt, self.reported_quality
        ));
        if self.shed_jobs > 0 {
            out.push_str(&format!(
                "shed      {} jobs (cross-checked)\n",
                self.shed_jobs
            ));
        }
        if self.issues.is_empty() {
            out.push_str("verdict   OK — all invariants hold\n");
        } else {
            for issue in &self.issues {
                out.push_str(&format!("ISSUE     {issue}\n"));
            }
        }
        out
    }
}

/// Validates and strips the optional `run_meta` provenance header.
///
/// When present the header must be usable (matching schema tag, t = 0);
/// when absent the trace is still valid (headers were introduced after
/// the wire format stabilized). Every consumer of `--trace` output that
/// expects `run_start` first should go through this.
pub fn strip_header(events: &[TraceEvent]) -> Result<&[TraceEvent], ReplayError> {
    let Some(TraceEvent::RunMeta { schema, t, .. }) = events.first() else {
        return Ok(events);
    };
    if schema != TRACE_SCHEMA {
        return Err(ReplayError::BadHeader(format!(
            "unsupported schema tag '{schema}' (expected '{TRACE_SCHEMA}')"
        )));
    }
    if *t != 0.0 {
        return Err(ReplayError::BadHeader(format!(
            "header timestamp must be 0, got {t}"
        )));
    }
    Ok(&events[1..])
}

/// Replays `events`, rebuilding energy, mode residency, and quality from
/// first principles and cross-checking them against the run summary.
pub fn replay(events: &[TraceEvent]) -> Result<ReplayReport, ReplayError> {
    if events.is_empty() {
        return Err(ReplayError::Empty);
    }
    let events = strip_header(events)?;
    if events.is_empty() {
        return Err(ReplayError::MissingRunStart);
    }
    let (cores, horizon_s, quality_c, quality_xmax, initial_mode, ledger_window, start_t) =
        match &events[0] {
            TraceEvent::RunStart {
                t,
                cores,
                horizon_s,
                quality_c,
                quality_xmax,
                initial_mode,
                ledger_window,
                ..
            } => (
                *cores as usize,
                *horizon_s,
                *quality_c,
                *quality_xmax,
                *initial_mode as usize,
                *ledger_window,
                *t,
            ),
            _ => return Err(ReplayError::MissingRunStart),
        };

    let mut issues = Vec::new();

    // Rebuild the three ledgers the summary aggregates.
    let mut meter = EnergyMeter::new(cores.max(1));
    let mut modes = ModeTracker::new(2, initial_mode.min(1), SimTime::from_secs(start_t));
    let f = ExpConcave::new(quality_c, quality_xmax);
    let mut ledger = QualityLedger::new(if ledger_window == 0 {
        LedgerMode::Cumulative
    } else {
        LedgerMode::SlidingWindow(ledger_window as usize)
    });
    let mut last_t = start_t;
    let mut summary: Option<(f64, f64, f64, f64, u64, u64)> = None;

    // Fault-aware state: which cores are online, which jobs were shed,
    // and which jobs finished discarded (shed jobs must be a subset).
    let mut online = vec![true; cores.max(1)];
    let mut shed: BTreeMap<u64, usize> = BTreeMap::new();
    let mut discarded_finishes: BTreeMap<u64, f64> = BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let t = ev.t();
        if t + 1e-12 < last_t {
            issues.push(format!(
                "event {i} ({}) goes back in time: {t} < {last_t}",
                ev.kind()
            ));
        }
        last_t = last_t.max(t);
        match ev {
            TraceEvent::RunStart { .. } if i != 0 => {
                issues.push(format!("duplicate run_start at event {i}"));
            }
            // The header was stripped above; any run_meta left in the
            // body is a duplicate or misplaced header.
            TraceEvent::RunMeta { .. } => {
                issues.push(format!("misplaced run_meta at event {i}"));
            }
            TraceEvent::ExecSlice {
                core,
                start_s,
                end_s,
                energy_j,
                ..
            } => {
                if *energy_j < 0.0 {
                    issues.push(format!("negative slice energy at event {i}"));
                }
                if end_s < start_s {
                    issues.push(format!("inverted slice interval at event {i}"));
                }
                if (*core as usize) < meter.cores() {
                    meter.record_joules(*core as usize, *energy_j);
                } else {
                    issues.push(format!("slice on unknown core {core} at event {i}"));
                }
                if (*core as usize) < online.len() && !online[*core as usize] {
                    issues.push(format!(
                        "exec_slice on offline core {core} at event {i} (t={t})"
                    ));
                }
            }
            TraceEvent::ModeSwitch {
                t,
                from_mode,
                to_mode,
                ..
            } => {
                if modes.current() != *from_mode as usize {
                    issues.push(format!(
                        "mode_switch at event {i} claims from={from_mode} but replay is in {}",
                        modes.current()
                    ));
                }
                modes.switch((*to_mode as usize).min(1), SimTime::from_secs(*t));
            }
            TraceEvent::JobFinish {
                job,
                processed,
                full_demand,
                discarded,
                ..
            } => {
                if *discarded {
                    ledger.record(0.0, f.value(*full_demand));
                    discarded_finishes.insert(*job, *processed);
                } else {
                    ledger.record(f.value(*processed), f.value(*full_demand));
                }
                if *processed > *full_demand + 1e-6 {
                    issues.push(format!("job processed beyond its demand at event {i}"));
                }
            }
            TraceEvent::JobCut {
                full_demand,
                cut_demand,
                ..
            } if *cut_demand > *full_demand + 1e-9 => {
                issues.push(format!("job_cut grew a job at event {i}"));
            }
            TraceEvent::QualitySample { quality, .. } if !(0.0..=1.0).contains(quality) => {
                issues.push(format!("quality sample out of [0,1] at event {i}"));
            }
            TraceEvent::CoreFault {
                core, online: up, ..
            } => {
                if (*core as usize) < online.len() {
                    online[*core as usize] = *up;
                } else {
                    issues.push(format!("core_fault on unknown core {core} at event {i}"));
                }
            }
            TraceEvent::BudgetThrottle {
                factor,
                budget_w_effective,
                ..
            } => {
                if !(*factor > 0.0 && *factor <= 1.0) {
                    issues.push(format!("budget_throttle factor out of (0,1] at event {i}"));
                }
                if !budget_w_effective.is_finite() || *budget_w_effective < 0.0 {
                    issues.push(format!("invalid effective budget at event {i}"));
                }
            }
            TraceEvent::DvfsDeviation { factor, core, .. } => {
                if !factor.is_finite() || *factor <= 0.0 {
                    issues.push(format!("dvfs_deviation factor not positive at event {i}"));
                }
                if (*core as usize) >= online.len() {
                    issues.push(format!(
                        "dvfs_deviation on unknown core {core} at event {i}"
                    ));
                }
            }
            TraceEvent::JobShed { job, .. } => {
                let previous = shed.insert(*job, i);
                if previous.is_some() {
                    issues.push(format!("job {job} shed twice (second at event {i})"));
                }
            }
            TraceEvent::RunSummary {
                energy_j,
                quality,
                aes_fraction,
                jobs_finished,
                jobs_discarded,
                t,
            } => {
                if summary.is_some() {
                    issues.push(format!("duplicate run_summary at event {i}"));
                }
                summary = Some((
                    *energy_j,
                    *quality,
                    *aes_fraction,
                    *t,
                    *jobs_finished,
                    *jobs_discarded,
                ));
            }
            _ => {}
        }
    }

    let (rep_energy, rep_quality, rep_aes, end_t, rep_finished, rep_discarded) =
        summary.ok_or(ReplayError::MissingRunSummary)?;

    let energy = meter.total_energy();
    let energy_rel_err = if rep_energy.abs() > 0.0 {
        (energy - rep_energy).abs() / rep_energy.abs()
    } else {
        energy.abs()
    };
    if energy_rel_err > ENERGY_REL_TOL {
        issues.push(format!(
            "energy conservation violated: slices sum to {energy} J, summary says {rep_energy} J"
        ));
    }

    // The driver finalizes residency at the horizon; fall back to the
    // summary timestamp if the trace disagrees.
    let end = if (end_t - horizon_s).abs() < 1e-9 {
        horizon_s
    } else {
        end_t
    };
    let aes = modes.fractions_at(SimTime::from_secs(end))[0];
    if (aes - rep_aes).abs() > AES_ABS_TOL {
        issues.push(format!(
            "AES residency mismatch: rebuilt {aes}, summary says {rep_aes}"
        ));
    }

    let quality = ledger.quality();
    if (quality - rep_quality).abs() > QUALITY_ABS_TOL {
        issues.push(format!(
            "quality mismatch: ledger rebuild gives {quality}, summary says {rep_quality}"
        ));
    }
    if ledger.jobs_recorded() != rep_finished {
        issues.push(format!(
            "job accounting mismatch: {} job_finish events, summary says {rep_finished}",
            ledger.jobs_recorded()
        ));
    }
    if ledger.jobs_discarded() != rep_discarded {
        issues.push(format!(
            "discard accounting mismatch: {} discards, summary says {rep_discarded}",
            ledger.jobs_discarded()
        ));
    }

    // Shed cross-check: every job the trace reports as shed must also
    // appear as a discarded job_finish with zero work processed — a shed
    // that quietly received service (or never left the system) means the
    // admission-control accounting lied.
    for (&job, &ev_idx) in &shed {
        match discarded_finishes.get(&job) {
            None => issues.push(format!(
                "job {job} shed at event {ev_idx} but never finished discarded"
            )),
            Some(&processed) if processed > 1e-9 => issues.push(format!(
                "shed job {job} reports {processed} units processed (must be 0)"
            )),
            Some(_) => {}
        }
    }

    Ok(ReplayReport {
        events: events.len(),
        energy_from_slices_j: energy,
        reported_energy_j: rep_energy,
        energy_rel_err,
        aes_residency: aes,
        reported_aes: rep_aes,
        quality_rebuilt: quality,
        reported_quality: rep_quality,
        shed_jobs: shed.len(),
        issues,
    })
}

/// Tolerance for the relative budget-conservation check: each budget
/// reallocation epoch's slices must sum to the global budget `H`.
pub const BUDGET_REL_TOL: f64 = 1e-6;

/// Outcome of replaying a fleet trace and cross-checking its invariants.
#[derive(Debug, Clone)]
pub struct FleetReplayReport {
    /// Total events replayed (header excluded).
    pub events: usize,
    /// Servers declared by `fleet_run_start`.
    pub servers: usize,
    /// Successful dispatches counted from `fleet_dispatch` events.
    pub dispatched: u64,
    /// Failovers counted from `fleet_failover` events.
    pub failovers: u64,
    /// Lost-and-retried attempts counted from `fleet_retry` events.
    pub retries: u64,
    /// Router sheds counted from `fleet_shed` events.
    pub shed: u64,
    /// Budget reallocation epochs checked for conservation.
    pub budget_epochs: usize,
    /// Every invariant violation found (empty when the trace is clean).
    pub issues: Vec<String>,
}

impl FleetReplayReport {
    /// Whether every invariant held.
    pub fn is_ok(&self) -> bool {
        self.issues.is_empty()
    }

    /// A short human-readable verdict block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "replayed {} fleet events across {} servers\n",
            self.events, self.servers
        ));
        out.push_str(&format!(
            "routing   {} dispatched, {} failovers, {} retries, {} shed\n",
            self.dispatched, self.failovers, self.retries, self.shed
        ));
        out.push_str(&format!(
            "budget    {} reallocation epochs conserve H\n",
            self.budget_epochs
        ));
        if self.issues.is_empty() {
            out.push_str("verdict   OK — all fleet invariants hold\n");
        } else {
            for issue in &self.issues {
                out.push_str(&format!("ISSUE     {issue}\n"));
            }
        }
        out
    }
}

/// Replays a fleet trace and cross-checks the router's invariants:
///
/// * dispatches only target servers that are online at the dispatch
///   instant (per the `shard_fault` stream),
/// * failovers are reclaimed only from dead servers, and every reclaimed
///   or retried job is later re-dispatched or explicitly shed — no job
///   silently vanishes,
/// * every budget reallocation epoch covers each server exactly once and
///   its slices sum to the global budget `H` (dead servers' slices return
///   to the pool, so the sum is conserved through crashes),
/// * the `fleet_summary` counts equal the event counts.
pub fn replay_fleet(events: &[TraceEvent]) -> Result<FleetReplayReport, ReplayError> {
    if events.is_empty() {
        return Err(ReplayError::Empty);
    }
    let events = strip_header(events)?;
    if events.is_empty() {
        return Err(ReplayError::MissingFleetRunStart);
    }
    let (servers, budget_w) = match &events[0] {
        TraceEvent::FleetRunStart {
            servers, budget_w, ..
        } => (*servers as usize, *budget_w),
        _ => return Err(ReplayError::MissingFleetRunStart),
    };

    let mut issues = Vec::new();
    if servers == 0 {
        issues.push("fleet_run_start declares zero servers".to_string());
    }
    let mut online = vec![true; servers.max(1)];
    let mut dispatched = 0u64;
    let mut failovers = 0u64;
    let mut retries = 0u64;
    let mut shed = 0u64;
    // Jobs reclaimed (failover) or lost (retry) that still owe the trace
    // a re-dispatch or an explicit shed: job -> index of the owing event.
    let mut pending: BTreeMap<u64, usize> = BTreeMap::new();
    let mut shed_jobs: BTreeMap<u64, usize> = BTreeMap::new();
    let mut summary: Option<(u64, u64, u64, u64, f64, f64)> = None;
    let mut last_t = f64::NEG_INFINITY;

    // One budget reallocation epoch = the run of fleet_budget events at a
    // single timestamp. Grouping is by t, so interleaved routing events
    // at the same instant do not split an epoch.
    let mut budget_epochs = 0usize;
    let mut group_t: Option<f64> = None;
    let mut group: Vec<(u64, f64)> = Vec::new();
    let close_group = |group: &mut Vec<(u64, f64)>,
                       group_t: &mut Option<f64>,
                       budget_epochs: &mut usize,
                       issues: &mut Vec<String>| {
        let Some(t) = group_t.take() else {
            return;
        };
        let mut seen = vec![false; servers.max(1)];
        let mut sum = 0.0;
        for &(shard, w) in group.iter() {
            if (shard as usize) >= servers {
                issues.push(format!("fleet_budget for unknown server {shard} at t={t}"));
            } else if seen[shard as usize] {
                issues.push(format!("fleet_budget covers server {shard} twice at t={t}"));
            } else {
                seen[shard as usize] = true;
            }
            if !w.is_finite() || w < 0.0 {
                issues.push(format!(
                    "invalid budget slice {w} W for server {shard} at t={t}"
                ));
            }
            sum += w;
        }
        if group.len() != servers {
            issues.push(format!(
                "budget epoch at t={t} covers {} of {servers} servers",
                group.len()
            ));
        }
        let rel = if budget_w.abs() > 0.0 {
            (sum - budget_w).abs() / budget_w.abs()
        } else {
            sum.abs()
        };
        if rel > BUDGET_REL_TOL {
            issues.push(format!(
                "budget not conserved at t={t}: slices sum to {sum} W, global H is {budget_w} W"
            ));
        }
        group.clear();
        *budget_epochs += 1;
    };

    for (i, ev) in events.iter().enumerate() {
        let t = ev.t();
        if t + 1e-12 < last_t {
            issues.push(format!(
                "event {i} ({}) goes back in time: {t} < {last_t}",
                ev.kind()
            ));
        }
        last_t = last_t.max(t);
        if group_t.is_some_and(|gt| gt != t) && !matches!(ev, TraceEvent::FleetBudget { .. }) {
            close_group(&mut group, &mut group_t, &mut budget_epochs, &mut issues);
        }
        match ev {
            TraceEvent::FleetRunStart { .. } if i != 0 => {
                issues.push(format!("duplicate fleet_run_start at event {i}"));
            }
            TraceEvent::RunMeta { .. } => {
                issues.push(format!("misplaced run_meta at event {i}"));
            }
            TraceEvent::ShardFault {
                shard, online: up, ..
            } => {
                if (*shard as usize) >= servers {
                    issues.push(format!(
                        "shard_fault on unknown server {shard} at event {i}"
                    ));
                } else if online[*shard as usize] == *up {
                    issues.push(format!(
                        "redundant shard_fault at event {i}: server {shard} already {}",
                        if *up { "online" } else { "offline" }
                    ));
                } else {
                    online[*shard as usize] = *up;
                }
            }
            TraceEvent::FleetDispatch { job, shard, .. } => {
                dispatched += 1;
                if (*shard as usize) >= servers {
                    issues.push(format!("dispatch to unknown server {shard} at event {i}"));
                } else if !online[*shard as usize] {
                    issues.push(format!(
                        "dispatch of job {job} to dead server {shard} at event {i} (t={t})"
                    ));
                }
                pending.remove(job);
            }
            TraceEvent::FleetRetry { job, next_s, .. } => {
                retries += 1;
                if *next_s + 1e-12 < t {
                    issues.push(format!("retry at event {i} scheduled in the past"));
                }
                pending.entry(*job).or_insert(i);
            }
            TraceEvent::FleetFailover { job, shard, .. } => {
                failovers += 1;
                if (*shard as usize) >= servers {
                    issues.push(format!("failover from unknown server {shard} at event {i}"));
                } else if online[*shard as usize] {
                    issues.push(format!(
                        "failover of job {job} from live server {shard} at event {i}"
                    ));
                }
                pending.entry(*job).or_insert(i);
            }
            TraceEvent::FleetShed { job, .. } => {
                shed += 1;
                pending.remove(job);
                if let Some(first) = shed_jobs.insert(*job, i) {
                    issues.push(format!("job {job} shed twice (events {first} and {i})"));
                }
            }
            TraceEvent::FleetBudget {
                t, shard, budget_w, ..
            } => {
                if group_t.is_some_and(|gt| gt != *t) {
                    close_group(&mut group, &mut group_t, &mut budget_epochs, &mut issues);
                }
                group_t = Some(*t);
                group.push((*shard, *budget_w));
            }
            TraceEvent::FleetSummary {
                dispatched,
                failovers,
                retries,
                shed,
                energy_j,
                quality,
                ..
            } => {
                if summary.is_some() {
                    issues.push(format!("duplicate fleet_summary at event {i}"));
                }
                summary = Some((
                    *dispatched,
                    *failovers,
                    *retries,
                    *shed,
                    *energy_j,
                    *quality,
                ));
            }
            _ => {}
        }
    }
    close_group(&mut group, &mut group_t, &mut budget_epochs, &mut issues);

    let (rep_dispatched, rep_failovers, rep_retries, rep_shed, rep_energy, rep_quality) =
        summary.ok_or(ReplayError::MissingFleetSummary)?;
    if rep_dispatched != dispatched {
        issues.push(format!(
            "summary says {rep_dispatched} dispatches, trace has {dispatched}"
        ));
    }
    if rep_failovers != failovers {
        issues.push(format!(
            "summary says {rep_failovers} failovers, trace has {failovers}"
        ));
    }
    if rep_retries != retries {
        issues.push(format!(
            "summary says {rep_retries} retries, trace has {retries}"
        ));
    }
    if rep_shed != shed {
        issues.push(format!("summary says {rep_shed} sheds, trace has {shed}"));
    }
    if !rep_energy.is_finite() || rep_energy < 0.0 {
        issues.push(format!("summary energy {rep_energy} J is invalid"));
    }
    if !(0.0..=1.0).contains(&rep_quality) {
        issues.push(format!("summary quality {rep_quality} out of [0,1]"));
    }
    for (&job, &ev_idx) in &pending {
        issues.push(format!(
            "job {job} reclaimed/lost at event {ev_idx} but never re-dispatched or shed"
        ));
    }

    Ok(FleetReplayReport {
        events: events.len(),
        servers,
        dispatched,
        failovers,
        retries,
        shed,
        budget_epochs,
        issues,
    })
}

/// Outcome of replaying a serve trace and recounting its ledger.
#[derive(Debug, Clone)]
pub struct ServeReplayReport {
    /// Total events replayed (header excluded).
    pub events: usize,
    /// Requests counted from `serve_request` events.
    pub requests: u64,
    /// Admissions counted from `serve_admit` events.
    pub admitted: u64,
    /// Terminal completions counted from `serve_complete` events.
    pub completed: u64,
    /// Terminal rejections counted from `serve_reject` events.
    pub rejected: u64,
    /// Terminal timeouts counted from `serve_timeout` events.
    pub timed_out: u64,
    /// Terminal sheds counted from `serve_shed` events.
    pub shed: u64,
    /// Every invariant violation found (empty when the trace is clean).
    pub issues: Vec<String>,
}

impl ServeReplayReport {
    /// Whether every invariant held.
    pub fn is_ok(&self) -> bool {
        self.issues.is_empty()
    }

    /// A short human-readable verdict block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "replayed {} serve events over {} requests\n",
            self.events, self.requests
        ));
        out.push_str(&format!(
            "terminal  {} completed, {} rejected, {} timed-out, {} shed ({} admitted)\n",
            self.completed, self.rejected, self.timed_out, self.shed, self.admitted
        ));
        if self.issues.is_empty() {
            out.push_str("verdict   OK — every request is exactly one terminal state\n");
        } else {
            for issue in &self.issues {
                out.push_str(&format!("ISSUE     {issue}\n"));
            }
        }
        out
    }
}

/// Replays a serve trace and recounts the serving ledger independently,
/// cross-checking the front end's core invariant:
///
/// * every request is **exactly one** of completed / rejected / shed /
///   timed-out — no request vanishes, no request double-counts,
/// * only admitted requests complete, time out, or are engine-shed, and
///   no admitted request is also rejected,
/// * no admission happens after drain began, and post-drain rejections
///   carry the `draining` reason,
/// * the `serve_summary` counters equal the recounted totals and the four
///   terminal counters sum to `requests`.
pub fn replay_serve(events: &[TraceEvent]) -> Result<ServeReplayReport, ReplayError> {
    if events.is_empty() {
        return Err(ReplayError::Empty);
    }
    let events = strip_header(events)?;
    if !matches!(events.first(), Some(TraceEvent::ServeRunStart { .. })) {
        return Err(ReplayError::MissingServeRunStart);
    }

    let mut issues = Vec::new();
    // req -> index of its serve_request event.
    let mut seen: BTreeMap<u64, usize> = BTreeMap::new();
    // req -> index of its serve_admit event.
    let mut admits: BTreeMap<u64, usize> = BTreeMap::new();
    // req -> (terminal kind, event index).
    let mut terminal: BTreeMap<u64, (&'static str, usize)> = BTreeMap::new();
    let mut drained_at: Option<usize> = None;
    let mut summary: Option<(u64, u64, u64, u64, u64, u64)> = None;
    let mut counts = (0u64, 0u64, 0u64, 0u64); // completed, rejected, timed_out, shed
    let mut last_t = f64::NEG_INFINITY;

    let record_terminal = |req: u64,
                           kind: &'static str,
                           i: usize,
                           terminal: &mut BTreeMap<u64, (&'static str, usize)>,
                           issues: &mut Vec<String>| {
        if let Some((prev_kind, prev_i)) = terminal.insert(req, (kind, i)) {
            issues.push(format!(
                "request {req} reached a second terminal state: {prev_kind} at event \
                     {prev_i}, then {kind} at event {i}"
            ));
        }
    };

    for (i, ev) in events.iter().enumerate() {
        let t = ev.t();
        if t + 1e-12 < last_t {
            issues.push(format!(
                "event {i} ({}) goes back in time: {t} < {last_t}",
                ev.kind()
            ));
        }
        last_t = last_t.max(t);
        match ev {
            TraceEvent::ServeRunStart { .. } if i != 0 => {
                issues.push(format!("duplicate serve_run_start at event {i}"));
            }
            TraceEvent::RunMeta { .. } => {
                issues.push(format!("misplaced run_meta at event {i}"));
            }
            TraceEvent::ServeRequest { req, demand, .. } => {
                if let Some(first) = seen.insert(*req, i) {
                    issues.push(format!(
                        "duplicate serve_request for {req} (events {first} and {i})"
                    ));
                }
                if !demand.is_finite() || *demand <= 0.0 {
                    issues.push(format!("request {req} carries invalid demand {demand}"));
                }
            }
            TraceEvent::ServeAdmit { req, .. } => {
                if !seen.contains_key(req) {
                    issues.push(format!("admit of unknown request {req} at event {i}"));
                }
                if let Some(d) = drained_at {
                    issues.push(format!(
                        "admit of request {req} at event {i} after drain began at event {d}"
                    ));
                }
                if let Some(first) = admits.insert(*req, i) {
                    issues.push(format!(
                        "request {req} admitted twice (events {first} and {i})"
                    ));
                }
            }
            TraceEvent::ServeReject { req, reason, .. } => {
                if !seen.contains_key(req) {
                    issues.push(format!("reject of unknown request {req} at event {i}"));
                }
                if let Some(a) = admits.get(req) {
                    issues.push(format!(
                        "request {req} rejected at event {i} after being admitted at event {a}"
                    ));
                }
                if drained_at.is_some() && *reason != crate::event::RejectReason::Draining {
                    issues.push(format!(
                        "post-drain rejection of request {req} carries reason '{}', \
                         expected 'draining'",
                        reason.as_str()
                    ));
                }
                counts.1 += 1;
                record_terminal(*req, "rejected", i, &mut terminal, &mut issues);
            }
            TraceEvent::ServeTimeout { req, .. } => {
                if !admits.contains_key(req) {
                    issues.push(format!("timeout of unadmitted request {req} at event {i}"));
                }
                counts.2 += 1;
                record_terminal(*req, "timed-out", i, &mut terminal, &mut issues);
            }
            TraceEvent::ServeComplete {
                req,
                processed,
                full_demand,
                ..
            } => {
                if !admits.contains_key(req) {
                    issues.push(format!(
                        "completion of unadmitted request {req} at event {i}"
                    ));
                }
                if !(*processed > 0.0 && *processed <= *full_demand + 1e-9) {
                    issues.push(format!(
                        "completion of request {req} reports {processed} of {full_demand} \
                         units (must be in (0, full])"
                    ));
                }
                counts.0 += 1;
                record_terminal(*req, "completed", i, &mut terminal, &mut issues);
            }
            TraceEvent::ServeShed { req, .. } => {
                if !admits.contains_key(req) {
                    issues.push(format!("shed of unadmitted request {req} at event {i}"));
                }
                counts.3 += 1;
                record_terminal(*req, "shed", i, &mut terminal, &mut issues);
            }
            TraceEvent::ServeDrain { .. } => {
                if let Some(d) = drained_at {
                    issues.push(format!(
                        "duplicate serve_drain at event {i} (first at event {d})"
                    ));
                } else {
                    drained_at = Some(i);
                }
            }
            TraceEvent::ServeSummary {
                requests,
                admitted,
                completed,
                rejected,
                timed_out,
                shed,
                ..
            } => {
                if summary.is_some() {
                    issues.push(format!("duplicate serve_summary at event {i}"));
                }
                summary = Some((
                    *requests, *admitted, *completed, *rejected, *timed_out, *shed,
                ));
            }
            _ => {}
        }
    }

    for (&req, &ev_idx) in &seen {
        if !terminal.contains_key(&req) {
            issues.push(format!(
                "request {req} (event {ev_idx}) never reached a terminal state"
            ));
        }
    }

    let (completed, rejected, timed_out, shed) = counts;
    let requests = seen.len() as u64;
    let admitted = admits.len() as u64;
    let (rep_requests, rep_admitted, rep_completed, rep_rejected, rep_timed_out, rep_shed) =
        summary.ok_or(ReplayError::MissingServeSummary)?;
    for (name, recounted, reported) in [
        ("requests", requests, rep_requests),
        ("admitted", admitted, rep_admitted),
        ("completed", completed, rep_completed),
        ("rejected", rejected, rep_rejected),
        ("timed_out", timed_out, rep_timed_out),
        ("shed", shed, rep_shed),
    ] {
        if recounted != reported {
            issues.push(format!(
                "summary says {reported} {name}, trace recount gives {recounted}"
            ));
        }
    }
    if completed + rejected + timed_out + shed != requests {
        issues.push(format!(
            "terminal states sum to {} but the trace has {requests} requests",
            completed + rejected + timed_out + shed
        ));
    }

    Ok(ServeReplayReport {
        events: events.len(),
        requests,
        admitted,
        completed,
        rejected,
        timed_out,
        shed,
        issues,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> TraceEvent {
        TraceEvent::RunStart {
            t: 0.0,
            algorithm: "GE".to_string(),
            cores: 2,
            budget_w: 40.0,
            q_ge: 0.9,
            horizon_s: 10.0,
            power_a: 2.0,
            power_beta: 2.4,
            quality_c: 0.0035,
            quality_xmax: 1500.0,
            units_per_ghz_sec: 1000.0,
            initial_mode: 1,
            ledger_window: 0,
        }
    }

    fn slice(t: f64, core: u64, energy: f64) -> TraceEvent {
        TraceEvent::ExecSlice {
            t,
            core,
            start_s: t - 1.0,
            end_s: t,
            ghz_secs: 0.5,
            energy_j: energy,
        }
    }

    fn finish(t: f64, job: u64, processed: f64, full: f64) -> TraceEvent {
        TraceEvent::JobFinish {
            t,
            job,
            processed,
            full_demand: full,
            discarded: false,
        }
    }

    fn summary_for(events: &[TraceEvent]) -> TraceEvent {
        // Build the matching summary by running the same bookkeeping.
        let energy: f64 = events
            .iter()
            .map(|e| match e {
                TraceEvent::ExecSlice { energy_j, .. } => *energy_j,
                _ => 0.0,
            })
            .sum();
        let f = ExpConcave::new(0.0035, 1500.0);
        let mut ledger = QualityLedger::cumulative();
        let mut modes = ModeTracker::new(2, 1, SimTime::ZERO);
        let mut n = 0;
        for e in events {
            match e {
                TraceEvent::JobFinish {
                    processed,
                    full_demand,
                    ..
                } => {
                    ledger.record(f.value(*processed), f.value(*full_demand));
                    n += 1;
                }
                TraceEvent::ModeSwitch { t, to_mode, .. } => {
                    modes.switch(*to_mode as usize, SimTime::from_secs(*t));
                }
                _ => {}
            }
        }
        TraceEvent::RunSummary {
            t: 10.0,
            energy_j: energy,
            quality: ledger.quality(),
            aes_fraction: modes.fractions_at(SimTime::from_secs(10.0))[0],
            jobs_finished: n,
            jobs_discarded: 0,
        }
    }

    #[test]
    fn clean_trace_passes() {
        let mut events = vec![
            start(),
            TraceEvent::ModeSwitch {
                t: 2.0,
                from_mode: 1,
                to_mode: 0,
                ledger_quality: 0.95,
            },
            slice(3.0, 0, 12.5),
            slice(3.0, 1, 7.25),
            finish(3.0, 0, 400.0, 700.0),
            TraceEvent::ModeSwitch {
                t: 6.0,
                from_mode: 0,
                to_mode: 1,
                ledger_quality: 0.85,
            },
            slice(8.0, 0, 3.0),
            finish(8.0, 1, 500.0, 500.0),
        ];
        events.push(summary_for(&events));
        let report = replay(&events).unwrap();
        assert!(report.is_ok(), "unexpected issues: {:?}", report.issues);
        assert!((report.aes_residency - 0.4).abs() < 1e-12);
        assert!(report.energy_rel_err < 1e-12);
    }

    #[test]
    fn energy_tampering_is_detected() {
        let mut events = vec![start(), slice(3.0, 0, 12.5), finish(3.0, 0, 400.0, 700.0)];
        events.push(summary_for(&events));
        if let TraceEvent::ExecSlice { energy_j, .. } = &mut events[1] {
            *energy_j += 1.0; // corrupt after the summary was computed
        }
        let report = replay(&events).unwrap();
        assert!(!report.is_ok());
        assert!(report.issues.iter().any(|m| m.contains("energy")));
    }

    #[test]
    fn quality_tampering_is_detected() {
        let mut events = vec![start(), finish(3.0, 0, 400.0, 700.0)];
        events.push(summary_for(&events));
        events.insert(2, finish(4.0, 1, 10.0, 900.0)); // extra unreported job
        let report = replay(&events).unwrap();
        assert!(!report.is_ok());
    }

    #[test]
    fn structural_errors() {
        assert!(matches!(replay(&[]), Err(ReplayError::Empty)));
        assert!(matches!(
            replay(&[finish(0.0, 0, 1.0, 1.0)]),
            Err(ReplayError::MissingRunStart)
        ));
        assert!(matches!(
            replay(&[start()]),
            Err(ReplayError::MissingRunSummary)
        ));
    }

    fn discarded(t: f64, job: u64, full: f64) -> TraceEvent {
        TraceEvent::JobFinish {
            t,
            job,
            processed: 0.0,
            full_demand: full,
            discarded: true,
        }
    }

    #[test]
    fn slices_on_offline_cores_are_flagged() {
        let mut events = vec![
            start(),
            TraceEvent::CoreFault {
                t: 2.0,
                core: 0,
                online: false,
            },
            slice(3.0, 0, 1.0), // core 0 is offline here
        ];
        events.push(summary_for(&events));
        let report = replay(&events).unwrap();
        assert!(report.issues.iter().any(|m| m.contains("offline core")));

        // After recovery the same slice is legal again.
        let mut events = vec![
            start(),
            TraceEvent::CoreFault {
                t: 2.0,
                core: 0,
                online: false,
            },
            TraceEvent::CoreFault {
                t: 2.5,
                core: 0,
                online: true,
            },
            slice(4.0, 0, 1.0),
        ];
        events.push(summary_for(&events));
        let report = replay(&events).unwrap();
        assert!(report.is_ok(), "{:?}", report.issues);
    }

    #[test]
    fn shed_jobs_must_finish_discarded_with_zero_work() {
        // Clean: shed then discarded with 0 processed.
        let mut events = vec![
            start(),
            TraceEvent::JobShed {
                t: 1.0,
                job: 5,
                estimate: 400.0,
                full_demand: 420.0,
                projected_quality: 0.7,
            },
            discarded(1.0, 5, 420.0),
        ];
        let mut ok_events = events.clone();
        let f = ExpConcave::new(0.0035, 1500.0);
        let mut ledger = QualityLedger::cumulative();
        ledger.record(0.0, f.value(420.0));
        ok_events.push(TraceEvent::RunSummary {
            t: 10.0,
            energy_j: 0.0,
            quality: ledger.quality(),
            aes_fraction: 0.0,
            jobs_finished: 1,
            jobs_discarded: 1,
        });
        let report = replay(&ok_events).unwrap();
        assert!(report.is_ok(), "{:?}", report.issues);
        assert_eq!(report.shed_jobs, 1);

        // Corrupt: shed job never finishes.
        events.pop();
        events.push(TraceEvent::RunSummary {
            t: 10.0,
            energy_j: 0.0,
            quality: 1.0,
            aes_fraction: 0.0,
            jobs_finished: 0,
            jobs_discarded: 0,
        });
        let report = replay(&events).unwrap();
        assert!(report
            .issues
            .iter()
            .any(|m| m.contains("never finished discarded")));
    }

    #[test]
    fn shed_job_with_service_is_flagged() {
        let mut events = vec![
            start(),
            TraceEvent::JobShed {
                t: 1.0,
                job: 5,
                estimate: 400.0,
                full_demand: 420.0,
                projected_quality: 0.7,
            },
            TraceEvent::JobFinish {
                t: 1.0,
                job: 5,
                processed: 50.0,
                full_demand: 420.0,
                discarded: true,
            },
        ];
        events.push(summary_for(&events));
        let report = replay(&events).unwrap();
        assert!(report.issues.iter().any(|m| m.contains("units processed")));
    }

    #[test]
    fn bad_throttle_factor_is_flagged() {
        let mut events = vec![
            start(),
            TraceEvent::BudgetThrottle {
                t: 1.0,
                factor: 1.5,
                budget_w_effective: 60.0,
            },
        ];
        events.push(summary_for(&events));
        let report = replay(&events).unwrap();
        assert!(report.issues.iter().any(|m| m.contains("factor")));
    }

    fn header(schema: &str) -> TraceEvent {
        TraceEvent::RunMeta {
            t: 0.0,
            schema: schema.to_string(),
            seed: 42,
            config_digest: 0xfeed,
            version: "0.1.0".to_string(),
        }
    }

    #[test]
    fn valid_header_is_accepted_and_stripped() {
        let mut events = vec![start(), slice(3.0, 0, 12.5), finish(3.0, 0, 400.0, 700.0)];
        events.push(summary_for(&events));
        let body_events = events.len();
        events.insert(0, header(TRACE_SCHEMA));
        let report = replay(&events).unwrap();
        assert!(report.is_ok(), "{:?}", report.issues);
        assert_eq!(report.events, body_events, "header must not count");
    }

    #[test]
    fn bad_header_schema_is_rejected() {
        let mut events = vec![header("ge-trace/v999"), start()];
        events.push(summary_for(&events));
        assert!(matches!(replay(&events), Err(ReplayError::BadHeader(_))));
        // A nonzero header timestamp is equally unusable.
        let bad_t = TraceEvent::RunMeta {
            t: 1.0,
            schema: TRACE_SCHEMA.to_string(),
            seed: 1,
            config_digest: 2,
            version: "0.1.0".to_string(),
        };
        assert!(matches!(
            replay(&[bad_t, start()]),
            Err(ReplayError::BadHeader(_))
        ));
        // A header with nothing after it has no run to replay.
        assert!(matches!(
            replay(&[header(TRACE_SCHEMA)]),
            Err(ReplayError::MissingRunStart)
        ));
    }

    #[test]
    fn misplaced_header_is_flagged() {
        let mut events = vec![start(), header(TRACE_SCHEMA), slice(3.0, 0, 1.0)];
        events.push(summary_for(&events));
        let report = replay(&events).unwrap();
        assert!(report
            .issues
            .iter()
            .any(|m| m.contains("misplaced run_meta")));
    }

    #[test]
    fn out_of_order_times_flagged() {
        let mut events = vec![start(), slice(5.0, 0, 1.0), slice(3.0, 0, 1.0)];
        events.push(summary_for(&events));
        let report = replay(&events).unwrap();
        assert!(report.issues.iter().any(|m| m.contains("back in time")));
    }

    // ---- fleet replay -------------------------------------------------

    fn fleet_start(servers: u64, budget_w: f64) -> TraceEvent {
        TraceEvent::FleetRunStart {
            t: 0.0,
            servers,
            cores: 4,
            budget_w,
            policy: "jsq".to_string(),
            partitioner: "prop".to_string(),
            seed: 7,
        }
    }

    fn budget_epoch(t: f64, slices: &[f64]) -> Vec<TraceEvent> {
        slices
            .iter()
            .enumerate()
            .map(|(i, &w)| TraceEvent::FleetBudget {
                t,
                shard: i as u64,
                budget_w: w,
            })
            .collect()
    }

    fn dispatch(t: f64, job: u64, shard: u64, attempt: u64) -> TraceEvent {
        TraceEvent::FleetDispatch {
            t,
            job,
            shard,
            attempt,
        }
    }

    fn fleet_summary(dispatched: u64, failovers: u64, retries: u64, shed: u64) -> TraceEvent {
        TraceEvent::FleetSummary {
            t: 10.0,
            dispatched,
            failovers,
            retries,
            shed,
            energy_j: 100.0,
            quality: 0.93,
        }
    }

    #[test]
    fn clean_fleet_trace_passes() {
        let mut events = vec![fleet_start(3, 240.0)];
        events.extend(budget_epoch(0.0, &[80.0, 80.0, 80.0]));
        events.push(dispatch(0.5, 0, 0, 0));
        events.push(TraceEvent::FleetRetry {
            t: 0.6,
            job: 1,
            attempt: 0,
            next_s: 0.7,
        });
        events.push(dispatch(0.7, 1, 1, 1));
        // Server 2 dies; its queued job 5 fails over to server 0, and the
        // next epoch returns its slice to the pool.
        events.push(TraceEvent::ShardFault {
            t: 2.0,
            shard: 2,
            online: false,
        });
        events.push(TraceEvent::FleetFailover {
            t: 2.0,
            job: 5,
            shard: 2,
        });
        events.push(dispatch(2.0, 5, 0, 0));
        events.extend(budget_epoch(3.0, &[140.0, 100.0, 0.0]));
        events.push(TraceEvent::ShardFault {
            t: 6.0,
            shard: 2,
            online: true,
        });
        events.push(TraceEvent::FleetShed {
            t: 7.0,
            job: 9,
            demand: 500.0,
        });
        events.push(fleet_summary(3, 1, 1, 1));
        let report = replay_fleet(&events).unwrap();
        assert!(report.is_ok(), "{:?}", report.issues);
        assert_eq!(report.budget_epochs, 2);
        assert_eq!(report.dispatched, 3);
        assert_eq!(report.failovers, 1);
        assert_eq!(report.retries, 1);
        assert_eq!(report.shed, 1);
    }

    #[test]
    fn dispatch_to_dead_server_is_flagged() {
        let mut events = vec![fleet_start(2, 100.0)];
        events.push(TraceEvent::ShardFault {
            t: 1.0,
            shard: 1,
            online: false,
        });
        events.push(dispatch(2.0, 0, 1, 0));
        events.push(fleet_summary(1, 0, 0, 0));
        let report = replay_fleet(&events).unwrap();
        assert!(report.issues.iter().any(|m| m.contains("dead server")));
    }

    #[test]
    fn unconserved_budget_is_flagged() {
        let mut events = vec![fleet_start(2, 100.0)];
        events.extend(budget_epoch(1.0, &[60.0, 60.0]));
        events.push(fleet_summary(0, 0, 0, 0));
        let report = replay_fleet(&events).unwrap();
        assert!(report.issues.iter().any(|m| m.contains("not conserved")));
        // A short epoch (one server missing) is equally flagged.
        let mut events = vec![fleet_start(2, 100.0)];
        events.push(TraceEvent::FleetBudget {
            t: 1.0,
            shard: 0,
            budget_w: 100.0,
        });
        events.push(fleet_summary(0, 0, 0, 0));
        let report = replay_fleet(&events).unwrap();
        assert!(report.issues.iter().any(|m| m.contains("covers 1 of 2")));
    }

    #[test]
    fn lost_job_without_redispatch_is_flagged() {
        let mut events = vec![fleet_start(2, 100.0)];
        events.push(TraceEvent::ShardFault {
            t: 1.0,
            shard: 0,
            online: false,
        });
        events.push(TraceEvent::FleetFailover {
            t: 1.0,
            job: 4,
            shard: 0,
        });
        events.push(fleet_summary(0, 1, 0, 0));
        let report = replay_fleet(&events).unwrap();
        assert!(report
            .issues
            .iter()
            .any(|m| m.contains("never re-dispatched or shed")));
    }

    #[test]
    fn failover_from_live_server_and_summary_mismatch_flagged() {
        let mut events = vec![fleet_start(2, 100.0)];
        events.push(TraceEvent::FleetFailover {
            t: 1.0,
            job: 4,
            shard: 0,
        });
        events.push(dispatch(1.0, 4, 1, 0));
        events.push(fleet_summary(7, 1, 0, 0));
        let report = replay_fleet(&events).unwrap();
        assert!(report.issues.iter().any(|m| m.contains("live server")));
        assert!(report.issues.iter().any(|m| m.contains("7 dispatches")));
    }

    #[test]
    fn fleet_structural_errors() {
        assert!(matches!(replay_fleet(&[]), Err(ReplayError::Empty)));
        assert!(matches!(
            replay_fleet(&[start()]),
            Err(ReplayError::MissingFleetRunStart)
        ));
        assert!(matches!(
            replay_fleet(&[fleet_start(2, 100.0)]),
            Err(ReplayError::MissingFleetSummary)
        ));
    }

    // ----- serve replay -----

    fn serve_start() -> TraceEvent {
        TraceEvent::ServeRunStart {
            t: 0.0,
            algorithm: "GE".to_string(),
            cores: 4,
            budget_w: 80.0,
            q_min: 0.5,
            queue_high: 8,
            queue_low: 2,
        }
    }

    fn serve_req(t: f64, req: u64) -> TraceEvent {
        TraceEvent::ServeRequest {
            t,
            req,
            demand: 400.0,
            deadline_s: t + 0.15,
        }
    }

    fn serve_admit(t: f64, req: u64) -> TraceEvent {
        TraceEvent::ServeAdmit {
            t,
            req,
            queue_len: 1,
        }
    }

    fn serve_summary(
        t: f64,
        counts: (u64, u64, u64, u64, u64, u64), // req, adm, comp, rej, to, shed
    ) -> TraceEvent {
        TraceEvent::ServeSummary {
            t,
            requests: counts.0,
            admitted: counts.1,
            completed: counts.2,
            rejected: counts.3,
            timed_out: counts.4,
            shed: counts.5,
        }
    }

    #[test]
    fn serve_clean_trace_passes() {
        let events = vec![
            serve_start(),
            serve_req(1.0, 0),
            serve_admit(1.0, 0),
            serve_req(1.1, 1),
            TraceEvent::ServeReject {
                t: 1.1,
                req: 1,
                reason: crate::event::RejectReason::Busy,
                queue_len: 9,
            },
            serve_req(1.2, 2),
            serve_admit(1.2, 2),
            TraceEvent::ServeComplete {
                t: 1.3,
                req: 0,
                processed: 400.0,
                full_demand: 400.0,
            },
            TraceEvent::ServeTimeout { t: 1.4, req: 2 },
            TraceEvent::ServeDrain { t: 2.0, pending: 0 },
            serve_summary(2.0, (3, 2, 1, 1, 1, 0)),
        ];
        let report = replay_serve(&events).unwrap();
        assert!(report.is_ok(), "{}", report.render());
        assert_eq!(report.requests, 3);
        assert_eq!(report.admitted, 2);
    }

    #[test]
    fn serve_double_terminal_and_vanished_request_flagged() {
        let events = vec![
            serve_start(),
            serve_req(1.0, 0),
            serve_admit(1.0, 0),
            serve_req(1.1, 1),
            serve_admit(1.1, 1),
            TraceEvent::ServeComplete {
                t: 1.3,
                req: 0,
                processed: 400.0,
                full_demand: 400.0,
            },
            TraceEvent::ServeTimeout { t: 1.4, req: 0 },
            serve_summary(2.0, (2, 2, 1, 0, 1, 0)),
        ];
        let report = replay_serve(&events).unwrap();
        assert!(report
            .issues
            .iter()
            .any(|m| m.contains("second terminal state")));
        assert!(report
            .issues
            .iter()
            .any(|m| m.contains("never reached a terminal state")));
    }

    #[test]
    fn serve_admit_after_drain_flagged() {
        let events = vec![
            serve_start(),
            TraceEvent::ServeDrain { t: 1.0, pending: 0 },
            serve_req(1.5, 0),
            serve_admit(1.5, 0),
            TraceEvent::ServeComplete {
                t: 1.6,
                req: 0,
                processed: 1.0,
                full_demand: 1.0,
            },
            serve_summary(2.0, (1, 1, 1, 0, 0, 0)),
        ];
        let report = replay_serve(&events).unwrap();
        assert!(report.issues.iter().any(|m| m.contains("after drain")));
    }

    #[test]
    fn serve_summary_mismatch_flagged() {
        let events = vec![
            serve_start(),
            serve_req(1.0, 0),
            TraceEvent::ServeReject {
                t: 1.0,
                req: 0,
                reason: crate::event::RejectReason::Floor,
                queue_len: 0,
            },
            serve_summary(2.0, (1, 0, 1, 0, 0, 0)),
        ];
        let report = replay_serve(&events).unwrap();
        assert!(report.issues.iter().any(|m| m.contains("summary says")));
    }

    #[test]
    fn serve_structural_errors() {
        assert!(matches!(replay_serve(&[]), Err(ReplayError::Empty)));
        assert!(matches!(
            replay_serve(&[start()]),
            Err(ReplayError::MissingServeRunStart)
        ));
        assert!(matches!(
            replay_serve(&[serve_start()]),
            Err(ReplayError::MissingServeSummary)
        ));
    }
}
