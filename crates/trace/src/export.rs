//! Hand-rolled JSONL / CSV exporters and the matching JSONL parser.
//!
//! No serde: events are flat (one level, scalar fields), so a ~100-line
//! writer/parser pair keeps the workspace dependency-free. Floats are
//! written with Rust's shortest round-trip formatting, so
//! `parse(jsonl(event)) == event` holds *exactly*, bit for bit — the
//! property the replay checker in [`crate::replay`] relies on.

use crate::event::{RejectReason, SplitPolicy, TraceEvent, TriggerKind};
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

/// A scalar field value, as written to the wire.
#[derive(Debug, Clone, PartialEq)]
enum Field {
    /// Unsigned integer.
    U(u64),
    /// Double-precision float.
    F(f64),
    /// String (only `algorithm` and the enum tags use this).
    S(String),
    /// Boolean.
    B(bool),
}

impl Field {
    fn write_json(&self, out: &mut String) {
        match self {
            Field::U(v) => out.push_str(&v.to_string()),
            Field::F(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Field::S(v) => {
                out.push('"');
                for c in v.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Field::B(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }

    fn write_csv(&self, out: &mut String) {
        match self {
            Field::U(v) => out.push_str(&v.to_string()),
            Field::F(v) => out.push_str(&v.to_string()),
            Field::S(v) => out.push_str(v), // labels never contain commas
            Field::B(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
}

/// Flattens an event into `(name, value)` pairs, `ev` kind excluded.
fn fields(ev: &TraceEvent) -> Vec<(&'static str, Field)> {
    use Field::{B, F, S, U};
    match ev {
        TraceEvent::RunMeta {
            t,
            schema,
            seed,
            config_digest,
            version,
        } => vec![
            ("t", F(*t)),
            ("schema", S(schema.clone())),
            ("seed", U(*seed)),
            ("config_digest", U(*config_digest)),
            ("version", S(version.clone())),
        ],
        TraceEvent::RunStart {
            t,
            algorithm,
            cores,
            budget_w,
            q_ge,
            horizon_s,
            power_a,
            power_beta,
            quality_c,
            quality_xmax,
            units_per_ghz_sec,
            initial_mode,
            ledger_window,
        } => vec![
            ("t", F(*t)),
            ("algorithm", S(algorithm.clone())),
            ("cores", U(*cores)),
            ("budget_w", F(*budget_w)),
            ("q_ge", F(*q_ge)),
            ("horizon_s", F(*horizon_s)),
            ("power_a", F(*power_a)),
            ("power_beta", F(*power_beta)),
            ("quality_c", F(*quality_c)),
            ("quality_xmax", F(*quality_xmax)),
            ("units_per_ghz_sec", F(*units_per_ghz_sec)),
            ("initial_mode", U(*initial_mode)),
            ("ledger_window", U(*ledger_window)),
        ],
        TraceEvent::JobArrival {
            t,
            job,
            deadline_s,
            demand,
        } => vec![
            ("t", F(*t)),
            ("job", U(*job)),
            ("deadline_s", F(*deadline_s)),
            ("demand", F(*demand)),
        ],
        TraceEvent::JobAssigned { t, job, core } => {
            vec![("t", F(*t)), ("job", U(*job)), ("core", U(*core))]
        }
        TraceEvent::TriggerFired { t, kind, queue_len } => vec![
            ("t", F(*t)),
            ("trigger", S(kind.as_str().to_string())),
            ("queue_len", U(*queue_len)),
        ],
        TraceEvent::ModeSwitch {
            t,
            from_mode,
            to_mode,
            ledger_quality,
        } => vec![
            ("t", F(*t)),
            ("from_mode", U(*from_mode)),
            ("to_mode", U(*to_mode)),
            ("ledger_quality", F(*ledger_quality)),
        ],
        TraceEvent::LfCut {
            t,
            level,
            target_quality,
            jobs,
            volume_before,
            volume_after,
        } => vec![
            ("t", F(*t)),
            ("level", F(*level)),
            ("target_quality", F(*target_quality)),
            ("jobs", U(*jobs)),
            ("volume_before", F(*volume_before)),
            ("volume_after", F(*volume_after)),
        ],
        TraceEvent::JobCut {
            t,
            job,
            full_demand,
            cut_demand,
        } => vec![
            ("t", F(*t)),
            ("job", U(*job)),
            ("full_demand", F(*full_demand)),
            ("cut_demand", F(*cut_demand)),
        ],
        TraceEvent::PowerSplit {
            t,
            policy,
            load_estimate_rps,
            budget_w,
        } => vec![
            ("t", F(*t)),
            ("policy", S(policy.as_str().to_string())),
            ("load_estimate_rps", F(*load_estimate_rps)),
            ("budget_w", F(*budget_w)),
        ],
        TraceEvent::CoreCap {
            t,
            core,
            cap_w,
            speed_cap_ghz,
        } => vec![
            ("t", F(*t)),
            ("core", U(*core)),
            ("cap_w", F(*cap_w)),
            ("speed_cap_ghz", F(*speed_cap_ghz)),
        ],
        TraceEvent::SecondCut {
            t,
            core,
            volume_before,
            volume_after,
        } => vec![
            ("t", F(*t)),
            ("core", U(*core)),
            ("volume_before", F(*volume_before)),
            ("volume_after", F(*volume_after)),
        ],
        TraceEvent::SpeedSegment {
            t,
            core,
            start_s,
            end_s,
            speed_ghz,
        } => vec![
            ("t", F(*t)),
            ("core", U(*core)),
            ("start_s", F(*start_s)),
            ("end_s", F(*end_s)),
            ("speed_ghz", F(*speed_ghz)),
        ],
        TraceEvent::ExecSlice {
            t,
            core,
            start_s,
            end_s,
            ghz_secs,
            energy_j,
        } => vec![
            ("t", F(*t)),
            ("core", U(*core)),
            ("start_s", F(*start_s)),
            ("end_s", F(*end_s)),
            ("ghz_secs", F(*ghz_secs)),
            ("energy_j", F(*energy_j)),
        ],
        TraceEvent::JobFinish {
            t,
            job,
            processed,
            full_demand,
            discarded,
        } => vec![
            ("t", F(*t)),
            ("job", U(*job)),
            ("processed", F(*processed)),
            ("full_demand", F(*full_demand)),
            ("discarded", B(*discarded)),
        ],
        TraceEvent::QualitySample {
            t,
            quality,
            mode,
            backlog_units,
            load_estimate_rps,
        } => vec![
            ("t", F(*t)),
            ("quality", F(*quality)),
            ("mode", U(*mode)),
            ("backlog_units", F(*backlog_units)),
            ("load_estimate_rps", F(*load_estimate_rps)),
        ],
        TraceEvent::CoreFault { t, core, online } => {
            vec![("t", F(*t)), ("core", U(*core)), ("online", B(*online))]
        }
        TraceEvent::BudgetThrottle {
            t,
            factor,
            budget_w_effective,
        } => vec![
            ("t", F(*t)),
            ("factor", F(*factor)),
            ("budget_w_effective", F(*budget_w_effective)),
        ],
        TraceEvent::DvfsDeviation { t, core, factor } => {
            vec![("t", F(*t)), ("core", U(*core)), ("factor", F(*factor))]
        }
        TraceEvent::DemandMisestimate {
            t,
            job,
            estimate,
            full_demand,
        } => vec![
            ("t", F(*t)),
            ("job", U(*job)),
            ("estimate", F(*estimate)),
            ("full_demand", F(*full_demand)),
        ],
        TraceEvent::JobShed {
            t,
            job,
            estimate,
            full_demand,
            projected_quality,
        } => vec![
            ("t", F(*t)),
            ("job", U(*job)),
            ("estimate", F(*estimate)),
            ("full_demand", F(*full_demand)),
            ("projected_quality", F(*projected_quality)),
        ],
        TraceEvent::FleetRunStart {
            t,
            servers,
            cores,
            budget_w,
            policy,
            partitioner,
            seed,
        } => vec![
            ("t", F(*t)),
            ("servers", U(*servers)),
            ("cores", U(*cores)),
            ("budget_w", F(*budget_w)),
            ("policy", S(policy.clone())),
            ("partitioner", S(partitioner.clone())),
            ("seed", U(*seed)),
        ],
        TraceEvent::ShardFault { t, shard, online } => {
            vec![("t", F(*t)), ("shard", U(*shard)), ("online", B(*online))]
        }
        TraceEvent::FleetDispatch {
            t,
            job,
            shard,
            attempt,
        } => vec![
            ("t", F(*t)),
            ("job", U(*job)),
            ("shard", U(*shard)),
            ("attempt", U(*attempt)),
        ],
        TraceEvent::FleetRetry {
            t,
            job,
            attempt,
            next_s,
        } => vec![
            ("t", F(*t)),
            ("job", U(*job)),
            ("attempt", U(*attempt)),
            ("next_s", F(*next_s)),
        ],
        TraceEvent::FleetFailover { t, job, shard } => {
            vec![("t", F(*t)), ("job", U(*job)), ("shard", U(*shard))]
        }
        TraceEvent::FleetShed { t, job, demand } => {
            vec![("t", F(*t)), ("job", U(*job)), ("demand", F(*demand))]
        }
        TraceEvent::FleetBudget { t, shard, budget_w } => vec![
            ("t", F(*t)),
            ("shard", U(*shard)),
            ("budget_w", F(*budget_w)),
        ],
        TraceEvent::FleetSummary {
            t,
            dispatched,
            failovers,
            retries,
            shed,
            energy_j,
            quality,
        } => vec![
            ("t", F(*t)),
            ("dispatched", U(*dispatched)),
            ("failovers", U(*failovers)),
            ("retries", U(*retries)),
            ("shed", U(*shed)),
            ("energy_j", F(*energy_j)),
            ("quality", F(*quality)),
        ],
        TraceEvent::ServeRunStart {
            t,
            algorithm,
            cores,
            budget_w,
            q_min,
            queue_high,
            queue_low,
        } => vec![
            ("t", F(*t)),
            ("algorithm", S(algorithm.clone())),
            ("cores", U(*cores)),
            ("budget_w", F(*budget_w)),
            ("q_min", F(*q_min)),
            ("queue_high", U(*queue_high)),
            ("queue_low", U(*queue_low)),
        ],
        TraceEvent::ServeRequest {
            t,
            req,
            demand,
            deadline_s,
        } => vec![
            ("t", F(*t)),
            ("req", U(*req)),
            ("demand", F(*demand)),
            ("deadline_s", F(*deadline_s)),
        ],
        TraceEvent::ServeAdmit { t, req, queue_len } => {
            vec![("t", F(*t)), ("req", U(*req)), ("queue_len", U(*queue_len))]
        }
        TraceEvent::ServeReject {
            t,
            req,
            reason,
            queue_len,
        } => vec![
            ("t", F(*t)),
            ("req", U(*req)),
            ("reason", S(reason.as_str().to_string())),
            ("queue_len", U(*queue_len)),
        ],
        TraceEvent::ServeTimeout { t, req } => vec![("t", F(*t)), ("req", U(*req))],
        TraceEvent::ServeComplete {
            t,
            req,
            processed,
            full_demand,
        } => vec![
            ("t", F(*t)),
            ("req", U(*req)),
            ("processed", F(*processed)),
            ("full_demand", F(*full_demand)),
        ],
        TraceEvent::ServeShed { t, req } => vec![("t", F(*t)), ("req", U(*req))],
        TraceEvent::ServeDrain { t, pending } => vec![("t", F(*t)), ("pending", U(*pending))],
        TraceEvent::ServeSummary {
            t,
            requests,
            admitted,
            completed,
            rejected,
            timed_out,
            shed,
        } => vec![
            ("t", F(*t)),
            ("requests", U(*requests)),
            ("admitted", U(*admitted)),
            ("completed", U(*completed)),
            ("rejected", U(*rejected)),
            ("timed_out", U(*timed_out)),
            ("shed", U(*shed)),
        ],
        TraceEvent::RunSummary {
            t,
            energy_j,
            quality,
            aes_fraction,
            jobs_finished,
            jobs_discarded,
        } => vec![
            ("t", F(*t)),
            ("energy_j", F(*energy_j)),
            ("quality", F(*quality)),
            ("aes_fraction", F(*aes_fraction)),
            ("jobs_finished", U(*jobs_finished)),
            ("jobs_discarded", U(*jobs_discarded)),
        ],
    }
}

/// Serializes one event as a single JSON object (no trailing newline).
pub fn jsonl_line(ev: &TraceEvent) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"ev\":\"");
    out.push_str(ev.kind());
    out.push('"');
    for (name, value) in fields(ev) {
        out.push_str(",\"");
        out.push_str(name);
        out.push_str("\":");
        value.write_json(&mut out);
    }
    out.push('}');
    out
}

/// Writes `events` as JSON Lines to `w`.
pub fn write_jsonl<'a, W: Write>(
    events: impl IntoIterator<Item = &'a TraceEvent>,
    w: &mut W,
) -> io::Result<()> {
    for ev in events {
        writeln!(w, "{}", jsonl_line(ev))?;
    }
    Ok(())
}

/// Hard upper bound on one JSONL trace line, in bytes. Every event the
/// exporters emit is far below this; anything longer is malformed or
/// hostile input, and the readers refuse it with
/// [`ParseErrorKind::LineTooLong`] *before* buffering the whole line, so
/// a trace fed from an untrusted stream can never grow memory unboundedly.
pub const MAX_JSONL_LINE_BYTES: usize = 64 * 1024;

/// What class of failure a [`ParseError`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Malformed JSON, an unknown event kind, a bad field, or a
    /// document-level contract violation (ordering, non-finite time).
    Syntax,
    /// A line exceeded [`MAX_JSONL_LINE_BYTES`].
    LineTooLong,
    /// The underlying reader failed ([`parse_jsonl_reader`] only).
    Io,
}

/// Error from parsing a JSONL trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number (0 when unknown).
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
    /// Failure class (length-cap violations are typed, not textual).
    pub kind: ParseErrorKind,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError {
        line: 0,
        message: msg.into(),
        kind: ParseErrorKind::Syntax,
    }
}

fn err_too_long(len: usize) -> ParseError {
    ParseError {
        line: 0,
        message: format!("line of {len}+ bytes exceeds the {MAX_JSONL_LINE_BYTES}-byte cap"),
        kind: ParseErrorKind::LineTooLong,
    }
}

/// A minimal parser for the flat JSON objects [`jsonl_line`] emits.
struct FlatJson<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FlatJson<'a> {
    fn parse(line: &'a str) -> Result<BTreeMap<String, Field>, ParseError> {
        let mut p = FlatJson {
            bytes: line.as_bytes(),
            pos: 0,
        };
        let mut map = BTreeMap::new();
        p.skip_ws();
        p.expect(b'{')?;
        loop {
            p.skip_ws();
            if p.peek() == Some(b'}') {
                p.pos += 1;
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            map.insert(key, value);
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(err("expected ',' or '}'")),
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(err("trailing characters after object"));
        }
        Ok(map)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!("expected '{}'", b as char)))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        // A line ending right after the backslash is a
                        // truncation, not an unknown escape — the two need
                        // distinct diagnostics for corruption triage.
                        None => return Err(err("truncated escape")),
                        Some(_) => return Err(err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(err("unterminated string")),
            }
        }
    }

    fn value(&mut self) -> Result<Field, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(Field::S(self.string()?)),
            Some(b't') => self.literal("true", Field::B(true)),
            Some(b'f') => self.literal("false", Field::B(false)),
            Some(b'n') => self.literal("null", Field::F(f64::NAN)),
            Some(_) => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| err("invalid number"))?;
                if raw.is_empty() {
                    return Err(err("expected a value"));
                }
                // Integers that fit u64 keep full precision; everything
                // else is a double.
                if !raw.contains(['.', 'e', 'E', '-']) {
                    if let Ok(u) = raw.parse::<u64>() {
                        return Ok(Field::U(u));
                    }
                }
                raw.parse::<f64>()
                    .map(Field::F)
                    .map_err(|_| err(format!("bad number '{raw}'")))
            }
            None => Err(err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Field) -> Result<Field, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(err(format!("expected '{lit}'")))
        }
    }
}

/// Typed accessors over a parsed field map.
struct Fields(BTreeMap<String, Field>);

impl Fields {
    fn f64(&self, name: &str) -> Result<f64, ParseError> {
        match self.0.get(name) {
            Some(Field::F(v)) if v.is_finite() => Ok(*v),
            Some(Field::F(_)) => Err(err(format!(
                "non-finite value in numeric field '{name}' (NaN/Inf/null are not valid trace data)"
            ))),
            Some(Field::U(v)) => Ok(*v as f64),
            _ => Err(err(format!("missing numeric field '{name}'"))),
        }
    }

    fn u64(&self, name: &str) -> Result<u64, ParseError> {
        match self.0.get(name) {
            Some(Field::U(v)) => Ok(*v),
            _ => Err(err(format!("missing integer field '{name}'"))),
        }
    }

    fn str(&self, name: &str) -> Result<&str, ParseError> {
        match self.0.get(name) {
            Some(Field::S(v)) => Ok(v),
            _ => Err(err(format!("missing string field '{name}'"))),
        }
    }

    fn bool(&self, name: &str) -> Result<bool, ParseError> {
        match self.0.get(name) {
            Some(Field::B(v)) => Ok(*v),
            _ => Err(err(format!("missing bool field '{name}'"))),
        }
    }
}

/// Parses one JSONL line back into a [`TraceEvent`]. Lines longer than
/// [`MAX_JSONL_LINE_BYTES`] are rejected with
/// [`ParseErrorKind::LineTooLong`].
pub fn parse_jsonl_line(line: &str) -> Result<TraceEvent, ParseError> {
    if line.len() > MAX_JSONL_LINE_BYTES {
        return Err(err_too_long(line.len()));
    }
    let f = Fields(FlatJson::parse(line)?);
    let kind = f.str("ev")?.to_string();
    let ev = match kind.as_str() {
        "run_meta" => TraceEvent::RunMeta {
            t: f.f64("t")?,
            schema: f.str("schema")?.to_string(),
            seed: f.u64("seed")?,
            config_digest: f.u64("config_digest")?,
            version: f.str("version")?.to_string(),
        },
        "run_start" => TraceEvent::RunStart {
            t: f.f64("t")?,
            algorithm: f.str("algorithm")?.to_string(),
            cores: f.u64("cores")?,
            budget_w: f.f64("budget_w")?,
            q_ge: f.f64("q_ge")?,
            horizon_s: f.f64("horizon_s")?,
            power_a: f.f64("power_a")?,
            power_beta: f.f64("power_beta")?,
            quality_c: f.f64("quality_c")?,
            quality_xmax: f.f64("quality_xmax")?,
            units_per_ghz_sec: f.f64("units_per_ghz_sec")?,
            initial_mode: f.u64("initial_mode")?,
            ledger_window: f.u64("ledger_window")?,
        },
        "job_arrival" => TraceEvent::JobArrival {
            t: f.f64("t")?,
            job: f.u64("job")?,
            deadline_s: f.f64("deadline_s")?,
            demand: f.f64("demand")?,
        },
        "job_assigned" => TraceEvent::JobAssigned {
            t: f.f64("t")?,
            job: f.u64("job")?,
            core: f.u64("core")?,
        },
        "trigger" => TraceEvent::TriggerFired {
            t: f.f64("t")?,
            kind: TriggerKind::parse(f.str("trigger")?)
                .ok_or_else(|| err("unknown trigger kind"))?,
            queue_len: f.u64("queue_len")?,
        },
        "mode_switch" => TraceEvent::ModeSwitch {
            t: f.f64("t")?,
            from_mode: f.u64("from_mode")?,
            to_mode: f.u64("to_mode")?,
            ledger_quality: f.f64("ledger_quality")?,
        },
        "lf_cut" => TraceEvent::LfCut {
            t: f.f64("t")?,
            level: f.f64("level")?,
            target_quality: f.f64("target_quality")?,
            jobs: f.u64("jobs")?,
            volume_before: f.f64("volume_before")?,
            volume_after: f.f64("volume_after")?,
        },
        "job_cut" => TraceEvent::JobCut {
            t: f.f64("t")?,
            job: f.u64("job")?,
            full_demand: f.f64("full_demand")?,
            cut_demand: f.f64("cut_demand")?,
        },
        "power_split" => TraceEvent::PowerSplit {
            t: f.f64("t")?,
            policy: SplitPolicy::parse(f.str("policy")?)
                .ok_or_else(|| err("unknown split policy"))?,
            load_estimate_rps: f.f64("load_estimate_rps")?,
            budget_w: f.f64("budget_w")?,
        },
        "core_cap" => TraceEvent::CoreCap {
            t: f.f64("t")?,
            core: f.u64("core")?,
            cap_w: f.f64("cap_w")?,
            speed_cap_ghz: f.f64("speed_cap_ghz")?,
        },
        "second_cut" => TraceEvent::SecondCut {
            t: f.f64("t")?,
            core: f.u64("core")?,
            volume_before: f.f64("volume_before")?,
            volume_after: f.f64("volume_after")?,
        },
        "speed_segment" => TraceEvent::SpeedSegment {
            t: f.f64("t")?,
            core: f.u64("core")?,
            start_s: f.f64("start_s")?,
            end_s: f.f64("end_s")?,
            speed_ghz: f.f64("speed_ghz")?,
        },
        "exec_slice" => TraceEvent::ExecSlice {
            t: f.f64("t")?,
            core: f.u64("core")?,
            start_s: f.f64("start_s")?,
            end_s: f.f64("end_s")?,
            ghz_secs: f.f64("ghz_secs")?,
            energy_j: f.f64("energy_j")?,
        },
        "job_finish" => TraceEvent::JobFinish {
            t: f.f64("t")?,
            job: f.u64("job")?,
            processed: f.f64("processed")?,
            full_demand: f.f64("full_demand")?,
            discarded: f.bool("discarded")?,
        },
        "quality_sample" => TraceEvent::QualitySample {
            t: f.f64("t")?,
            quality: f.f64("quality")?,
            mode: f.u64("mode")?,
            backlog_units: f.f64("backlog_units")?,
            load_estimate_rps: f.f64("load_estimate_rps")?,
        },
        "core_fault" => TraceEvent::CoreFault {
            t: f.f64("t")?,
            core: f.u64("core")?,
            online: f.bool("online")?,
        },
        "budget_throttle" => TraceEvent::BudgetThrottle {
            t: f.f64("t")?,
            factor: f.f64("factor")?,
            budget_w_effective: f.f64("budget_w_effective")?,
        },
        "dvfs_deviation" => TraceEvent::DvfsDeviation {
            t: f.f64("t")?,
            core: f.u64("core")?,
            factor: f.f64("factor")?,
        },
        "demand_misestimate" => TraceEvent::DemandMisestimate {
            t: f.f64("t")?,
            job: f.u64("job")?,
            estimate: f.f64("estimate")?,
            full_demand: f.f64("full_demand")?,
        },
        "job_shed" => TraceEvent::JobShed {
            t: f.f64("t")?,
            job: f.u64("job")?,
            estimate: f.f64("estimate")?,
            full_demand: f.f64("full_demand")?,
            projected_quality: f.f64("projected_quality")?,
        },
        "fleet_run_start" => TraceEvent::FleetRunStart {
            t: f.f64("t")?,
            servers: f.u64("servers")?,
            cores: f.u64("cores")?,
            budget_w: f.f64("budget_w")?,
            policy: f.str("policy")?.to_string(),
            partitioner: f.str("partitioner")?.to_string(),
            seed: f.u64("seed")?,
        },
        "shard_fault" => TraceEvent::ShardFault {
            t: f.f64("t")?,
            shard: f.u64("shard")?,
            online: f.bool("online")?,
        },
        "fleet_dispatch" => TraceEvent::FleetDispatch {
            t: f.f64("t")?,
            job: f.u64("job")?,
            shard: f.u64("shard")?,
            attempt: f.u64("attempt")?,
        },
        "fleet_retry" => TraceEvent::FleetRetry {
            t: f.f64("t")?,
            job: f.u64("job")?,
            attempt: f.u64("attempt")?,
            next_s: f.f64("next_s")?,
        },
        "fleet_failover" => TraceEvent::FleetFailover {
            t: f.f64("t")?,
            job: f.u64("job")?,
            shard: f.u64("shard")?,
        },
        "fleet_shed" => TraceEvent::FleetShed {
            t: f.f64("t")?,
            job: f.u64("job")?,
            demand: f.f64("demand")?,
        },
        "fleet_budget" => TraceEvent::FleetBudget {
            t: f.f64("t")?,
            shard: f.u64("shard")?,
            budget_w: f.f64("budget_w")?,
        },
        "fleet_summary" => TraceEvent::FleetSummary {
            t: f.f64("t")?,
            dispatched: f.u64("dispatched")?,
            failovers: f.u64("failovers")?,
            retries: f.u64("retries")?,
            shed: f.u64("shed")?,
            energy_j: f.f64("energy_j")?,
            quality: f.f64("quality")?,
        },
        "serve_run_start" => TraceEvent::ServeRunStart {
            t: f.f64("t")?,
            algorithm: f.str("algorithm")?.to_string(),
            cores: f.u64("cores")?,
            budget_w: f.f64("budget_w")?,
            q_min: f.f64("q_min")?,
            queue_high: f.u64("queue_high")?,
            queue_low: f.u64("queue_low")?,
        },
        "serve_request" => TraceEvent::ServeRequest {
            t: f.f64("t")?,
            req: f.u64("req")?,
            demand: f.f64("demand")?,
            deadline_s: f.f64("deadline_s")?,
        },
        "serve_admit" => TraceEvent::ServeAdmit {
            t: f.f64("t")?,
            req: f.u64("req")?,
            queue_len: f.u64("queue_len")?,
        },
        "serve_reject" => TraceEvent::ServeReject {
            t: f.f64("t")?,
            req: f.u64("req")?,
            reason: RejectReason::parse(f.str("reason")?)
                .ok_or_else(|| err("unknown reject reason"))?,
            queue_len: f.u64("queue_len")?,
        },
        "serve_timeout" => TraceEvent::ServeTimeout {
            t: f.f64("t")?,
            req: f.u64("req")?,
        },
        "serve_complete" => TraceEvent::ServeComplete {
            t: f.f64("t")?,
            req: f.u64("req")?,
            processed: f.f64("processed")?,
            full_demand: f.f64("full_demand")?,
        },
        "serve_shed" => TraceEvent::ServeShed {
            t: f.f64("t")?,
            req: f.u64("req")?,
        },
        "serve_drain" => TraceEvent::ServeDrain {
            t: f.f64("t")?,
            pending: f.u64("pending")?,
        },
        "serve_summary" => TraceEvent::ServeSummary {
            t: f.f64("t")?,
            requests: f.u64("requests")?,
            admitted: f.u64("admitted")?,
            completed: f.u64("completed")?,
            rejected: f.u64("rejected")?,
            timed_out: f.u64("timed_out")?,
            shed: f.u64("shed")?,
        },
        "run_summary" => TraceEvent::RunSummary {
            t: f.f64("t")?,
            energy_j: f.f64("energy_j")?,
            quality: f.f64("quality")?,
            aes_fraction: f.f64("aes_fraction")?,
            jobs_finished: f.u64("jobs_finished")?,
            jobs_discarded: f.u64("jobs_discarded")?,
        },
        other => return Err(err(format!("unknown event kind '{other}'"))),
    };
    Ok(ev)
}

/// Timestamp regressions larger than this are malformed input (the
/// driver emits events in non-decreasing time order).
const ORDER_TOL: f64 = 1e-9;

/// Parses a whole JSONL document (blank lines skipped).
///
/// Beyond per-line syntax, this validates the document-level contract:
/// event timestamps must be non-decreasing (within a small numerical
/// tolerance). Out-of-order or non-finite timestamps are errors, never
/// panics.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, ParseError> {
    let mut out: Vec<TraceEvent> = Vec::new();
    let mut order = OrderCheck::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at_line = |mut e: ParseError| {
            e.line = i + 1;
            e
        };
        let ev = parse_jsonl_line(line).map_err(at_line)?;
        order.check(&ev).map_err(at_line)?;
        out.push(ev);
    }
    Ok(out)
}

/// Document-level timestamp-ordering validation, shared by the in-memory
/// and streaming parsers.
struct OrderCheck {
    last_t: f64,
}

impl OrderCheck {
    fn new() -> Self {
        OrderCheck {
            last_t: f64::NEG_INFINITY,
        }
    }

    fn check(&mut self, ev: &TraceEvent) -> Result<(), ParseError> {
        let t = ev.t();
        if !t.is_finite() {
            return Err(err("non-finite event timestamp"));
        }
        if t + ORDER_TOL < self.last_t {
            return Err(err(format!(
                "out-of-order timestamp {t} after {}",
                self.last_t
            )));
        }
        self.last_t = self.last_t.max(t);
        Ok(())
    }
}

/// Streaming variant of [`parse_jsonl`]: reads JSONL from `r` line by
/// line, enforcing [`MAX_JSONL_LINE_BYTES`] *while buffering* — an
/// overlong (or newline-less, endless) line fails fast with
/// [`ParseErrorKind::LineTooLong`] after at most one cap's worth of
/// bytes, instead of growing a line buffer without bound.
pub fn parse_jsonl_reader<R: BufRead>(mut r: R) -> Result<Vec<TraceEvent>, ParseError> {
    let mut out: Vec<TraceEvent> = Vec::new();
    let mut order = OrderCheck::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut lineno = 0usize;
    loop {
        lineno += 1;
        buf.clear();
        let at_line = |mut e: ParseError| {
            e.line = lineno;
            e
        };
        // Bounded read_until('\n'): pull from the internal buffer in
        // chunks, never retaining more than the cap plus one chunk.
        let mut saw_newline = false;
        while !saw_newline {
            let chunk = match r.fill_buf() {
                Ok(c) => c,
                Err(e) => {
                    return Err(at_line(ParseError {
                        line: lineno,
                        message: format!("read error: {e}"),
                        kind: ParseErrorKind::Io,
                    }))
                }
            };
            if chunk.is_empty() {
                break; // EOF
            }
            let (take, newline) = match chunk.iter().position(|&b| b == b'\n') {
                Some(idx) => (idx + 1, true),
                None => (chunk.len(), false),
            };
            buf.extend_from_slice(&chunk[..take - usize::from(newline)]);
            r.consume(take);
            saw_newline = newline;
            if buf.len() > MAX_JSONL_LINE_BYTES {
                return Err(at_line(err_too_long(buf.len())));
            }
        }
        if buf.is_empty() && !saw_newline {
            return Ok(out); // clean EOF
        }
        let line = std::str::from_utf8(&buf).map_err(|_| at_line(err("invalid UTF-8")))?;
        if line.trim().is_empty() {
            continue;
        }
        let ev = parse_jsonl_line(line).map_err(at_line)?;
        order.check(&ev).map_err(at_line)?;
        out.push(ev);
    }
}

/// Column order of the wide CSV schema (union of all event fields).
const CSV_COLUMNS: &[&str] = &[
    "ev",
    "t",
    "algorithm",
    "cores",
    "budget_w",
    "q_ge",
    "horizon_s",
    "power_a",
    "power_beta",
    "quality_c",
    "quality_xmax",
    "units_per_ghz_sec",
    "initial_mode",
    "ledger_window",
    "job",
    "core",
    "deadline_s",
    "demand",
    "trigger",
    "queue_len",
    "from_mode",
    "to_mode",
    "ledger_quality",
    "level",
    "target_quality",
    "jobs",
    "volume_before",
    "volume_after",
    "full_demand",
    "cut_demand",
    "policy",
    "load_estimate_rps",
    "cap_w",
    "speed_cap_ghz",
    "start_s",
    "end_s",
    "speed_ghz",
    "ghz_secs",
    "energy_j",
    "processed",
    "discarded",
    "quality",
    "mode",
    "backlog_units",
    "aes_fraction",
    "jobs_finished",
    "jobs_discarded",
    "online",
    "factor",
    "budget_w_effective",
    "estimate",
    "projected_quality",
    "servers",
    "partitioner",
    "shard",
    "attempt",
    "next_s",
    "dispatched",
    "failovers",
    "retries",
    "shed",
    "req",
    "reason",
    "q_min",
    "queue_high",
    "queue_low",
    "pending",
    "requests",
    "admitted",
    "completed",
    "rejected",
    "timed_out",
    "schema",
    "seed",
    "config_digest",
    "version",
];

/// The header row of the wide CSV schema.
pub fn csv_header() -> String {
    CSV_COLUMNS.join(",")
}

/// One wide-schema CSV row for `ev` (fields not in the variant stay empty).
pub fn csv_row(ev: &TraceEvent) -> String {
    let fs = fields(ev);
    let mut out = String::with_capacity(96);
    for (i, col) in CSV_COLUMNS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if *col == "ev" {
            out.push_str(ev.kind());
        } else if let Some((_, v)) = fs.iter().find(|(n, _)| n == col) {
            v.write_csv(&mut out);
        }
    }
    out
}

/// Writes `events` as a wide-schema CSV document to `w`.
pub fn write_csv<'a, W: Write>(
    events: impl IntoIterator<Item = &'a TraceEvent>,
    w: &mut W,
) -> io::Result<()> {
    writeln!(w, "{}", csv_header())?;
    for ev in events {
        writeln!(w, "{}", csv_row(ev))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exemplars() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunMeta {
                t: 0.0,
                schema: "ge-trace/v1".to_string(),
                seed: 0xdead_beef_cafe_f00d,
                config_digest: 0x1234_5678_9abc_def0,
                version: "0.1.0".to_string(),
            },
            TraceEvent::RunStart {
                t: 0.0,
                algorithm: "GE".to_string(),
                cores: 8,
                budget_w: 160.0,
                q_ge: 0.9,
                horizon_s: 60.0,
                power_a: 2.0,
                power_beta: 2.4,
                quality_c: 0.0035,
                quality_xmax: 1500.0,
                units_per_ghz_sec: 1000.0,
                initial_mode: 1,
                ledger_window: 0,
            },
            TraceEvent::JobArrival {
                t: 0.013_527_891_236_4,
                job: 7,
                deadline_s: 0.163_527_891_236_4,
                demand: 412.734_120_000_1,
            },
            TraceEvent::JobAssigned {
                t: 0.02,
                job: 7,
                core: 3,
            },
            TraceEvent::TriggerFired {
                t: 0.05,
                kind: TriggerKind::Counter,
                queue_len: 12,
            },
            TraceEvent::ModeSwitch {
                t: 0.05,
                from_mode: 1,
                to_mode: 0,
                ledger_quality: 0.912_345_678_9,
            },
            TraceEvent::LfCut {
                t: 0.05,
                level: 230.5,
                target_quality: 0.9,
                jobs: 12,
                volume_before: 4096.0,
                volume_after: 2766.0,
            },
            TraceEvent::JobCut {
                t: 0.05,
                job: 7,
                full_demand: 412.7,
                cut_demand: 230.5,
            },
            TraceEvent::PowerSplit {
                t: 0.05,
                policy: SplitPolicy::WaterFilling,
                load_estimate_rps: 141.2,
                budget_w: 160.0,
            },
            TraceEvent::CoreCap {
                t: 0.05,
                core: 3,
                cap_w: 20.0,
                speed_cap_ghz: 1.87,
            },
            TraceEvent::SecondCut {
                t: 0.05,
                core: 3,
                volume_before: 700.0,
                volume_after: 512.0,
            },
            TraceEvent::SpeedSegment {
                t: 0.05,
                core: 3,
                start_s: 0.05,
                end_s: 0.13,
                speed_ghz: 1.5,
            },
            TraceEvent::ExecSlice {
                t: 0.13,
                core: 3,
                start_s: 0.05,
                end_s: 0.13,
                ghz_secs: 0.12,
                energy_j: 0.734_982_134,
            },
            TraceEvent::JobFinish {
                t: 0.13,
                job: 7,
                processed: 230.5,
                full_demand: 412.7,
                discarded: false,
            },
            TraceEvent::QualitySample {
                t: 0.13,
                quality: 0.94,
                mode: 0,
                backlog_units: 812.0,
                load_estimate_rps: 141.2,
            },
            TraceEvent::CoreFault {
                t: 12.5,
                core: 5,
                online: false,
            },
            TraceEvent::BudgetThrottle {
                t: 13.0,
                factor: 0.625_123_456_789,
                budget_w_effective: 200.039_494_949,
            },
            TraceEvent::DvfsDeviation {
                t: 13.5,
                core: 2,
                factor: 0.9,
            },
            TraceEvent::DemandMisestimate {
                t: 14.0,
                job: 42,
                estimate: 180.123_456_789,
                full_demand: 212.7,
            },
            TraceEvent::JobShed {
                t: 14.5,
                job: 43,
                estimate: 512.0,
                full_demand: 530.25,
                projected_quality: 0.712_345_678_9,
            },
            TraceEvent::FleetRunStart {
                t: 15.0,
                servers: 4,
                cores: 8,
                budget_w: 640.0,
                policy: "jsq".to_string(),
                partitioner: "prop".to_string(),
                seed: 77,
            },
            TraceEvent::ShardFault {
                t: 15.5,
                shard: 2,
                online: false,
            },
            TraceEvent::FleetFailover {
                t: 15.5,
                job: 51,
                shard: 2,
            },
            TraceEvent::FleetDispatch {
                t: 15.5,
                job: 51,
                shard: 1,
                attempt: 0,
            },
            TraceEvent::FleetRetry {
                t: 15.75,
                job: 52,
                attempt: 0,
                next_s: 15.8,
            },
            TraceEvent::FleetShed {
                t: 15.9,
                job: 53,
                demand: 812.25,
            },
            TraceEvent::FleetBudget {
                t: 16.0,
                shard: 1,
                budget_w: 213.333_333_333_3,
            },
            TraceEvent::FleetSummary {
                t: 59.0,
                dispatched: 4021,
                failovers: 13,
                retries: 5,
                shed: 9,
                energy_j: 4_813.217,
                quality: 0.9017,
            },
            TraceEvent::ServeRunStart {
                t: 59.0,
                algorithm: "GE".to_string(),
                cores: 8,
                budget_w: 160.0,
                q_min: 0.5,
                queue_high: 64,
                queue_low: 16,
            },
            TraceEvent::ServeRequest {
                t: 59.1,
                req: 0,
                demand: 412.734_120_000_1,
                deadline_s: 59.25,
            },
            TraceEvent::ServeAdmit {
                t: 59.1,
                req: 0,
                queue_len: 1,
            },
            TraceEvent::ServeReject {
                t: 59.2,
                req: 1,
                reason: RejectReason::Busy,
                queue_len: 65,
            },
            TraceEvent::ServeTimeout { t: 59.25, req: 0 },
            TraceEvent::ServeComplete {
                t: 59.3,
                req: 2,
                processed: 230.5,
                full_demand: 412.7,
            },
            TraceEvent::ServeShed { t: 59.4, req: 3 },
            TraceEvent::ServeDrain {
                t: 59.5,
                pending: 2,
            },
            TraceEvent::ServeSummary {
                t: 59.9,
                requests: 4,
                admitted: 3,
                completed: 1,
                rejected: 1,
                timed_out: 1,
                shed: 1,
            },
            TraceEvent::RunSummary {
                t: 60.0,
                energy_j: 1_234.567_890_123,
                quality: 0.9213,
                aes_fraction: 0.4123,
                jobs_finished: 9001,
                jobs_discarded: 17,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant_exactly() {
        for ev in exemplars() {
            let line = jsonl_line(&ev);
            let back = parse_jsonl_line(&line).expect("parse back");
            assert_eq!(back, ev, "round-trip mismatch for {line}");
        }
    }

    #[test]
    fn jsonl_document_round_trip() {
        let events = exemplars();
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn string_escaping_round_trips() {
        let ev = TraceEvent::RunStart {
            t: 0.0,
            algorithm: "we\"ird\\label\nx".to_string(),
            cores: 1,
            budget_w: 1.0,
            q_ge: 0.9,
            horizon_s: 1.0,
            power_a: 0.0,
            power_beta: 2.0,
            quality_c: 0.001,
            quality_xmax: 10.0,
            units_per_ghz_sec: 1.0,
            initial_mode: 0,
            ledger_window: 0,
        };
        let back = parse_jsonl_line(&jsonl_line(&ev)).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let doc = "{\"ev\":\"job_assigned\",\"t\":0,\"job\":1,\"core\":0}\nnot json";
        let e = parse_jsonl(doc).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(parse_jsonl_line("{\"ev\":\"martian\",\"t\":0}").is_err());
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        for bad in [
            "{\"ev\":\"job_cut\",\"t\":0,\"job\":1,\"full_demand\":NaN,\"cut_demand\":1}",
            "{\"ev\":\"job_cut\",\"t\":0,\"job\":1,\"full_demand\":null,\"cut_demand\":1}",
            "{\"ev\":\"job_cut\",\"t\":0,\"job\":1,\"full_demand\":1e999,\"cut_demand\":1}",
            "{\"ev\":\"job_cut\",\"t\":-1e999,\"job\":1,\"full_demand\":1,\"cut_demand\":1}",
        ] {
            assert!(parse_jsonl_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn truncated_lines_are_rejected() {
        let full = jsonl_line(&TraceEvent::JobAssigned {
            t: 1.0,
            job: 9,
            core: 2,
        });
        for cut in 1..full.len() {
            assert!(
                parse_jsonl_line(&full[..cut]).is_err(),
                "accepted truncation at byte {cut}: {}",
                &full[..cut]
            );
        }
    }

    #[test]
    fn out_of_order_timestamps_are_rejected() {
        let doc = "{\"ev\":\"job_assigned\",\"t\":5.0,\"job\":1,\"core\":0}\n\
                   {\"ev\":\"job_assigned\",\"t\":1.0,\"job\":2,\"core\":0}";
        let e = parse_jsonl(doc).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("out-of-order"), "{}", e.message);
        // Equal and epsilon-earlier timestamps are legal.
        let ok = "{\"ev\":\"job_assigned\",\"t\":5.0,\"job\":1,\"core\":0}\n\
                  {\"ev\":\"job_assigned\",\"t\":5.0,\"job\":2,\"core\":0}";
        assert!(parse_jsonl(ok).is_ok());
    }

    #[test]
    fn overlong_lines_are_rejected_with_typed_error() {
        let mut line = String::from("{\"ev\":\"run_meta\",\"t\":0,\"schema\":\"");
        line.push_str(&"x".repeat(MAX_JSONL_LINE_BYTES));
        line.push_str("\",\"seed\":1,\"config_digest\":1,\"version\":\"0\"}");
        let e = parse_jsonl_line(&line).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::LineTooLong);
        let e = parse_jsonl(&line).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::LineTooLong);
        assert_eq!(e.line, 1);
    }

    #[test]
    fn streaming_reader_caps_newline_less_input_early() {
        // An endless line with no newline must fail after ~one cap of
        // bytes, not buffer the whole stream.
        struct Endless;
        impl io::Read for Endless {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                buf.fill(b'a');
                Ok(buf.len())
            }
        }
        let r = io::BufReader::new(Endless);
        let e = parse_jsonl_reader(r).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::LineTooLong);
    }

    #[test]
    fn streaming_reader_matches_in_memory_parse() {
        let events = exemplars();
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        let a = parse_jsonl(&text).unwrap();
        let b = parse_jsonl_reader(io::Cursor::new(buf)).unwrap();
        assert_eq!(a, b);
        // No trailing newline is also fine.
        let trimmed = text.trim_end().as_bytes().to_vec();
        let c = parse_jsonl_reader(io::Cursor::new(trimmed)).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn csv_rows_align_with_header() {
        let header_cols = csv_header().split(',').count();
        for ev in exemplars() {
            assert_eq!(csv_row(&ev).split(',').count(), header_cols);
        }
    }

    #[test]
    fn csv_document_has_all_rows() {
        let events = exemplars();
        let mut buf = Vec::new();
        write_csv(&events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), events.len() + 1);
    }
}
