//! Named-metric registry: counters, gauges, and histograms.
//!
//! A lightweight sibling of the event stream: where [`crate::TraceEvent`]
//! records *what happened*, the registry aggregates *how often / how
//! much* under stable metric names, and [`Snapshot`] freezes the whole
//! registry for reporting. Metric names are created on first touch, so
//! instrumented code never pre-registers anything.

use ge_metrics::Histogram;
use std::collections::BTreeMap;

/// A registry of named counters, gauges, and histograms.
///
/// ```
/// use ge_trace::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.inc("scheduler.epochs");
/// m.add("jobs.assigned", 3);
/// m.set_gauge("queue.depth", 7.0);
/// m.observe("cut.fraction", 0.25);
/// let snap = m.snapshot();
/// assert_eq!(snap.counter("scheduler.epochs"), Some(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments counter `name` by `delta`.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into histogram `name`.
    ///
    /// The histogram is created on first use with a `[0, 1]` range and
    /// 200 bins; use [`MetricsRegistry::observe_with`] for other ranges.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.observe_with(name, value, 1.0, 200);
    }

    /// Records `value` into histogram `name`, creating it with the given
    /// `upper` bound and `bins` if it does not exist yet.
    pub fn observe_with(&mut self, name: &str, value: f64, upper: f64, bins: usize) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new(upper, bins);
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Freezes the registry into an immutable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    let (p50, p95, p99) = h.p50_p95_p99();
                    (
                        k.clone(),
                        HistogramSummary {
                            count: h.count(),
                            mean: h.mean(),
                            p50,
                            p95,
                            p99,
                            max: h.max(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Percentile summary of one histogram at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Arithmetic mean of observations.
    pub mean: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Largest observation.
    pub max: f64,
}

/// An immutable point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Renders the snapshot as `metric,kind,value…` CSV lines.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,kind,count,value,p50,p95,p99,max\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("{k},counter,{v},{v},,,,\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k},gauge,,{v},,,,\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k},histogram,{},{},{},{},{},{}\n",
                h.count, h.mean, h.p50, h.p95, h.p99, h.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.inc("a");
        m.inc("a");
        m.add("a", 3);
        assert_eq!(m.snapshot().counter("a"), Some(5));
        assert_eq!(m.snapshot().counter("missing"), None);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("g", 1.0);
        m.set_gauge("g", 2.5);
        assert_eq!(m.snapshot().gauge("g"), Some(2.5));
    }

    #[test]
    fn histograms_summarize() {
        let mut m = MetricsRegistry::new();
        for i in 0..100 {
            m.observe("h", i as f64 / 100.0);
        }
        let snap = m.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 100);
        assert!(h.p50 > 0.3 && h.p50 < 0.7);
        assert!(h.p99 >= h.p95 && h.p95 >= h.p50);
    }

    #[test]
    fn csv_has_a_row_per_metric() {
        let mut m = MetricsRegistry::new();
        m.inc("c");
        m.set_gauge("g", 1.0);
        m.observe("h", 0.5);
        let csv = m.snapshot().to_csv();
        assert_eq!(csv.lines().count(), 4); // header + 3 metrics
        assert!(csv.contains("c,counter"));
        assert!(csv.contains("g,gauge"));
        assert!(csv.contains("h,histogram"));
    }
}
