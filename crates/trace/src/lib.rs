//! # ge-trace — structured decision tracing and metrics
//!
//! The observability layer of the GE scheduling reproduction. The paper's
//! claims are dynamic — AES residency (Fig. 1), compensation kicking in
//! when the ledger sags (Fig. 5), WF speed variance (Fig. 6) — so this
//! crate gives every scheduler decision a typed, serializable event:
//!
//! * [`event`] — [`TraceEvent`] variants for arrivals, C-RR assignment,
//!   trigger firings, AES↔BQ switches, LF cuts, ES/WF power splits,
//!   Quality-OPT second cuts, YDS segments, per-slice energy, and run
//!   bracketing (`run_start` / `run_summary`).
//! * [`sink`] — the [`TraceSink`] trait plus [`NullSink`] (free),
//!   [`VecSink`] (record everything), and [`RingSink`] (bounded
//!   flight-recorder with sampling).
//! * [`registry`] — named counters/gauges/histograms and [`Snapshot`].
//! * [`export`] — hand-rolled JSONL and wide-schema CSV writers and the
//!   matching JSONL parser (no serde; floats round-trip exactly).
//! * [`replay`] — an invariant checker that rebuilds energy, AES
//!   residency, and ledger quality from a trace and cross-checks them
//!   against the run's reported summary.
//!
//! Emission sites guard with [`TraceSink::is_enabled`], so running with
//! [`NullSink`] costs a branch per site — the driver's untraced path
//! stays within noise of the pre-tracing implementation.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod event;
pub mod export;
pub mod registry;
pub mod replay;
pub mod sink;

pub use event::{RejectReason, SplitPolicy, TraceEvent, TriggerKind};
pub use export::{
    csv_header, csv_row, jsonl_line, parse_jsonl, parse_jsonl_line, parse_jsonl_reader, write_csv,
    write_jsonl, ParseError, ParseErrorKind, MAX_JSONL_LINE_BYTES,
};
pub use registry::{HistogramSummary, MetricsRegistry, Snapshot};
pub use replay::{
    replay, replay_fleet, replay_serve, strip_header, FleetReplayReport, ReplayError, ReplayReport,
    ServeReplayReport, TRACE_SCHEMA,
};
pub use sink::{NullSink, RingSink, TraceSink, VecSink};
