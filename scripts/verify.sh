#!/usr/bin/env bash
# Tier-1 verification: formatting, release build, full test suite.
#
# Everything runs offline — the workspace has no external crate
# dependencies, so a fresh container with only the Rust toolchain
# must pass this script without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo build --release (offline)"
cargo build --release --workspace --offline

echo "== cargo test -q (offline)"
cargo test -q --workspace --offline

echo "verify: OK"
