#!/usr/bin/env bash
# Tier-1 verification: formatting, release build, full test suite.
#
# Everything runs offline — the workspace has no external crate
# dependencies, so a fresh container with only the Rust toolchain
# must pass this script without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo build --release (offline)"
cargo build --release --workspace --offline

echo "== cargo clippy (offline, -D warnings)"
cargo clippy --workspace --offline -- -D warnings

echo "== cargo test -q (offline)"
cargo test -q --workspace --offline

echo "== faults smoke run (--faults coreloss)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release --offline -q -p ge-experiments -- \
  --quick --reps 1 --horizon 5 --out "$smoke_dir" --faults coreloss \
  >"$smoke_dir/stdout.log"
test -s "$smoke_dir/faults-corelossa.csv"

echo "== bench report smoke run (sched_report --json)"
cargo bench -q --offline -p ge-bench --bench sched_report -- \
  lf_cut --json "$smoke_dir/BENCH_sched.json" \
  >"$smoke_dir/bench.log"
test -s "$smoke_dir/BENCH_sched.json"
grep -q '"schema": "ge-bench-sched/v1"' "$smoke_dir/BENCH_sched.json"
grep -q '"entries"' "$smoke_dir/BENCH_sched.json"
grep -q '"min_ns"' "$smoke_dir/BENCH_sched.json"

echo "verify: OK"
