#!/usr/bin/env bash
# Tier-1 verification: formatting, release build, full test suite.
#
# Everything runs offline — the workspace has no external crate
# dependencies, so a fresh container with only the Rust toolchain
# must pass this script without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo build --release (offline)"
cargo build --release --workspace --offline

echo "== cargo clippy (offline, -D warnings)"
cargo clippy --workspace --offline -- -D warnings

echo "== cargo test -q (offline)"
cargo test -q --workspace --offline

echo "== unwrap/expect lint (non-test library code vs baseline)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
# Count .unwrap()/.expect( per file in crates/*/src, ignoring everything
# from the first #[cfg(test)] on. New library code must use typed errors;
# counts may only shrink relative to scripts/unwrap_baseline.txt.
for f in $(find crates/*/src -name '*.rs' | sort); do
  n=$(awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" | grep -c -E '\.unwrap\(\)|\.expect\(' || true)
  if [ "$n" -gt 0 ]; then echo "$n $f"; fi
done >"$smoke_dir/unwrap_now.txt"
awk 'NR==FNR { base[$2] = $1; next }
     { b = ($2 in base) ? base[$2] : 0
       if ($1 + 0 > b + 0) {
         printf "FAIL: %s has %d unwrap/expect in library code (baseline %d)\n", $2, $1, b
         bad = 1
       } }
     END { exit bad }' scripts/unwrap_baseline.txt "$smoke_dir/unwrap_now.txt"

echo "== faults smoke run (--faults coreloss)"
cargo run --release --offline -q -p ge-experiments -- \
  --quick --reps 1 --horizon 5 --out "$smoke_dir" --faults coreloss \
  >"$smoke_dir/stdout.log"
test -s "$smoke_dir/faults-corelossa.csv"

echo "== fleet smoke run (--fleet fleetcombined, digest bit-exactness)"
# Run the fleet degradation study twice at a small scale and require the
# printed result digest — FNV-1a over every cell's exact result bits —
# to repeat bit-for-bit: the whole fleet (router, repartitioner,
# failover, retries) must be reproducible from one seed.
cargo run --release --offline -q -p ge-experiments -- \
  --quick --horizon 8 --out "$smoke_dir" --fleet fleetcombined --servers 3 \
  >"$smoke_dir/fleet-a.log"
test -s "$smoke_dir/fleet-fleetcombineda.csv"
cargo run --release --offline -q -p ge-experiments -- \
  --quick --horizon 8 --out "$smoke_dir" --fleet fleetcombined --servers 3 \
  >"$smoke_dir/fleet-b.log"
d_fleet_a=$(grep -o 'digest=0x[0-9a-f]*' "$smoke_dir/fleet-a.log")
d_fleet_b=$(grep -o 'digest=0x[0-9a-f]*' "$smoke_dir/fleet-b.log")
test -n "$d_fleet_a"
if [ "$d_fleet_a" != "$d_fleet_b" ]; then
  echo "FAIL: fleet digest $d_fleet_a != repeat-run digest $d_fleet_b"
  exit 1
fi

echo "== supervised runner smoke (--supervise + manifest + ge_supervise_* scrape)"
cargo run --release --offline -q -p ge-experiments -- \
  --quick --reps 1 --horizon 5 --out "$smoke_dir" --faults throttle --supervise \
  --metrics-addr 127.0.0.1:0 \
  >"$smoke_dir/supervise.log"
test -s "$smoke_dir/faults-throttlea.csv"
grep -q '"schema": "ge-run-manifest/v1"' "$smoke_dir/run-manifest.json"
grep -q '"status": "ok"' "$smoke_dir/run-manifest.json"
# The supervisor's health counters must reach the Prometheus exposition.
grep -q '^# TYPE ge_supervise_retries_total counter$' "$smoke_dir/metrics-scrape.txt"
grep -q '^# TYPE ge_supervise_timeouts_total counter$' "$smoke_dir/metrics-scrape.txt"
grep -q '^# TYPE ge_supervise_salvages_total counter$' "$smoke_dir/metrics-scrape.txt"

echo "== kill-and-resume smoke (checkpoint bit-exactness)"
# Stop a checkpointed run mid-flight, resume it, and require the resumed
# result digest to equal an uninterrupted run's, bit for bit.
cargo run --release --offline -q -p ge-experiments -- \
  --quick --horizon 6 --checkpoint "$smoke_dir/smoke.ckpt" \
  --checkpoint-every 3 --stop-after 2 --faults combined \
  >"$smoke_dir/ck-stop.log"
grep -q '^stopped:' "$smoke_dir/ck-stop.log"
test -s "$smoke_dir/smoke.ckpt"
cargo run --release --offline -q -p ge-experiments -- \
  --quick --horizon 6 --checkpoint "$smoke_dir/smoke.ckpt" \
  --checkpoint-every 3 --resume --faults combined \
  >"$smoke_dir/ck-resume.log"
cargo run --release --offline -q -p ge-experiments -- \
  --quick --horizon 6 --checkpoint "$smoke_dir/straight.ckpt" \
  --checkpoint-every 3 --faults combined \
  >"$smoke_dir/ck-straight.log"
d_resumed=$(grep -o 'digest=0x[0-9a-f]*' "$smoke_dir/ck-resume.log")
d_straight=$(grep -o 'digest=0x[0-9a-f]*' "$smoke_dir/ck-straight.log")
test -n "$d_resumed"
if [ "$d_resumed" != "$d_straight" ]; then
  echo "FAIL: resumed digest $d_resumed != straight digest $d_straight"
  exit 1
fi

echo "== differential-oracle smoke (--differential, 200 instances)"
# Fan every algorithm over 200 tiny random instances and certify the
# results against the brute-force oracle (YDS KKT certificate, cut
# optimality, clairvoyant energy bound, checkpoint/resume bit-equality).
# Any disagreement is a non-zero exit with a paste-ready repro.
cargo run --release --offline -q -p ge-experiments -- \
  --differential --instances 200 --seed 42 --out "$smoke_dir" \
  >"$smoke_dir/differential.log"
grep -q 'disagreements: none' "$smoke_dir/differential.log"

echo "== serve smoke (live front end: port 0, replay, SIGTERM drain, digest equality)"
# Two identical server+replay pairs must land on the same accounting
# digest; a third pair is SIGTERMed mid-stream and must still drain
# cleanly with every request in exactly one terminal state. The binary
# is exec'd directly so the signal reaches it rather than cargo.
serve_bin=./target/release/ge-experiments
for run in a b; do
  "$serve_bin" --serve --serve-addr 127.0.0.1:0 --horizon 20 \
    --out "$smoke_dir/serve-$run" >"$smoke_dir/serve-$run.log" 2>&1 &
  serve_pid=$!
  for _ in $(seq 50); do
    grep -q 'serve: listening on ' "$smoke_dir/serve-$run.log" && break
    sleep 0.1
  done
  addr=$(sed -n 's/^serve: listening on //p' "$smoke_dir/serve-$run.log")
  test -n "$addr"
  "$serve_bin" --serve-replay "$addr" --requests 120 --horizon 20 --seed 9 \
    >"$smoke_dir/replay-$run.log"
  wait "$serve_pid"
done
grep -q 'verdict   OK' "$smoke_dir/serve-a.log"
grep -q 'resume_bit_exact=true' "$smoke_dir/serve-a.log"
d_serve_a=$(grep -o 'digest=0x[0-9a-f]*' "$smoke_dir/serve-a.log")
d_serve_b=$(grep -o 'digest=0x[0-9a-f]*' "$smoke_dir/serve-b.log")
test -n "$d_serve_a"
if [ "$d_serve_a" != "$d_serve_b" ]; then
  echo "FAIL: serve digest $d_serve_a != repeat-run digest $d_serve_b"
  exit 1
fi
# The replay client's decision-latency percentiles land in the trajectory.
grep -q 'serve_decision/p999' "$smoke_dir/serve-a/BENCH_trajectory.jsonl"
# SIGTERM mid-stream under a paced replay: graceful drain, full books.
"$serve_bin" --serve --serve-addr 127.0.0.1:0 --horizon 20 \
  --out "$smoke_dir/serve-kill" >"$smoke_dir/serve-kill.log" 2>&1 &
serve_pid=$!
for _ in $(seq 50); do
  grep -q 'serve: listening on ' "$smoke_dir/serve-kill.log" && break
  sleep 0.1
done
addr=$(sed -n 's/^serve: listening on //p' "$smoke_dir/serve-kill.log")
test -n "$addr"
"$serve_bin" --serve-replay "$addr" --requests 120 --horizon 20 --seed 9 \
  --replay-speed 2 >"$smoke_dir/replay-kill.log" &
replay_pid=$!
sleep 2
kill -TERM "$serve_pid"
wait "$serve_pid"
wait "$replay_pid"
grep -q 'termination signal received' "$smoke_dir/serve-kill.log"
grep -q 'verdict   OK' "$smoke_dir/serve-kill.log"
grep -q 'resume_bit_exact=true' "$smoke_dir/serve-kill.log"

echo "== chaos soak smoke (--soak: seeded wire abuse, digest equality)"
# Garbage frames, partial writes, connection drops, bursts, slow clients,
# a worker-panic probe, and a mid-stream kill-and-drain — twice, with the
# same seed; the accounting digests must agree and the independently
# recounted trace must show every request in exactly one terminal state.
cargo run --release --offline -q -p ge-experiments -- \
  --soak --requests 100 --horizon 20 --seed 7 --out "$smoke_dir/soak" \
  >"$smoke_dir/soak.log" 2>&1
grep -q 'digests agree across two runs' "$smoke_dir/soak.log"
grep -q 'verdict   OK' "$smoke_dir/soak.log"

echo "== telemetry smoke (live scrape + folded profile artifact)"
# Run a quick figure with the metrics endpoint armed: the CLI
# self-scrapes the Prometheus text into <out>/metrics-scrape.txt and
# writes the folded-stack span profile. The scrape must carry at least
# one counter, one gauge, and one histogram family; the profile must
# contain the structural engine_advance span. Both artifacts are kept
# under results/ for inspection.
cargo run --release --offline -q -p ge-experiments -- \
  --quick --reps 1 --horizon 5 --out "$smoke_dir" fig1 \
  --metrics-addr 127.0.0.1:0 --profile-out results/profile-smoke.folded \
  >"$smoke_dir/telemetry.log"
grep -q '^# TYPE ge_epochs_total counter$' "$smoke_dir/metrics-scrape.txt"
grep -q '^# TYPE ge_replan_incremental_epochs gauge$' "$smoke_dir/metrics-scrape.txt"
grep -q '^# TYPE ge_epoch_planning_seconds histogram$' "$smoke_dir/metrics-scrape.txt"
grep -q '_bucket{le=' "$smoke_dir/metrics-scrape.txt"
grep -q '^engine_advance ' results/profile-smoke.folded
cp "$smoke_dir/metrics-scrape.txt" results/metrics-scrape-smoke.txt

echo "== bench report smoke run (sched_report --json, telemetry pair)"
cargo bench -q --offline -p ge-bench --bench sched_report -- \
  e2e_ge/telemetry --json "$smoke_dir/BENCH_sched.json" \
  >"$smoke_dir/bench.log"
test -s "$smoke_dir/BENCH_sched.json"
grep -q '"schema": "ge-bench-sched/v1"' "$smoke_dir/BENCH_sched.json"
grep -q '"entries"' "$smoke_dir/BENCH_sched.json"
grep -q '"min_ns"' "$smoke_dir/BENCH_sched.json"
grep -q '"name": "e2e_ge/telemetry_off"' "$smoke_dir/BENCH_sched.json"
grep -q '"name": "e2e_ge/telemetry_on"' "$smoke_dir/BENCH_sched.json"
# The committed report must also carry the interleaved pair.
grep -q '"name": "e2e_ge/telemetry_off"' BENCH_sched.json
grep -q '"name": "e2e_ge/telemetry_on"' BENCH_sched.json

echo "verify: OK"
