//! Quickstart: run the GE scheduler against best-effort on the paper's
//! web-search workload and print what you save.
//!
//! ```text
//! cargo run --release -p ge-examples --bin quickstart [rate] [--seed N]
//! ```

use ge_core::{run, Algorithm, SimConfig};
use ge_examples::{opt, parse_args, summary_line};
use ge_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let (pos, opts) = parse_args(std::env::args().skip(1));
    let rate: f64 = pos.first().map_or(150.0, |s| s.parse().expect("rate"));
    let seed: u64 = opt(&opts, "seed").map_or(42, |s| s.parse().expect("seed"));

    // 1. The paper's platform: 16 DVFS cores, 320 W budget, Q_GE = 0.9.
    let cfg = SimConfig::paper_default();

    // 2. The paper's workload: Poisson arrivals, bounded-Pareto demands,
    //    150 ms deadlines, 10 simulated minutes.
    let workload = WorkloadConfig::paper_default(rate);
    let trace = WorkloadGenerator::new(workload, seed).generate();
    println!(
        "workload: {} requests over {:.0}s (λ = {rate}/s, mean demand {:.0} units)\n",
        trace.len(),
        trace.last_release().as_secs(),
        trace.stats().mean_demand,
    );

    // 3. Run Good-Enough scheduling and the Best-Effort baseline on the
    //    *same* trace.
    let ge = run(&cfg, &trace, &Algorithm::Ge);
    let be = run(&cfg, &trace, &Algorithm::Be);
    println!("{}", summary_line(&ge));
    println!("{}", summary_line(&be));

    println!(
        "\nGE delivered {:.1}% quality (target {:.0}%) using {:.1}% less energy than best effort.",
        ge.quality * 100.0,
        cfg.q_ge * 100.0,
        ge.energy_saving_vs(&be) * 100.0,
    );
}
