//! Shared helpers for the example binaries.
//!
//! Each example under this package is a self-contained demonstration of
//! the public API; this library only hosts the tiny bits they share
//! (argument parsing and result pretty-printing) so the examples stay
//! focused on the scheduling story.

use ge_core::RunResult;

/// Parses `--key value` style options and positional args from `argv`.
///
/// Returns `(positional, options)`. Unknown flags are treated as options
/// expecting a value; boolean flags can be passed as `--flag true`.
pub fn parse_args(args: impl Iterator<Item = String>) -> (Vec<String>, Vec<(String, String)>) {
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if let Some(key) = a.strip_prefix("--") {
            let value = args.next().unwrap_or_default();
            options.push((key.to_string(), value));
        } else {
            positional.push(a);
        }
    }
    (positional, options)
}

/// Looks up an option value.
pub fn opt<'a>(options: &'a [(String, String)], key: &str) -> Option<&'a str> {
    options
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// One formatted line summarizing a run.
pub fn summary_line(r: &RunResult) -> String {
    format!(
        "{:>10}  quality={:.4}  energy={:>10.0} J  aes={:>5.1}%  discarded={:>6}  epochs={}",
        r.algorithm,
        r.quality,
        r.energy_j,
        r.aes_fraction * 100.0,
        r.jobs_discarded,
        r.schedule_epochs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let (pos, opts) = parse_args(
            ["150", "--seed", "7", "--random-windows", "true"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(pos, vec!["150"]);
        assert_eq!(opt(&opts, "seed"), Some("7"));
        assert_eq!(opt(&opts, "random-windows"), Some("true"));
        assert_eq!(opt(&opts, "missing"), None);
    }
}
