//! A web-search front-end over a diurnal load curve.
//!
//! The paper motivates GE with interactive services whose load varies;
//! this example stitches a day-shaped arrival-rate profile (off-peak →
//! ramp → peak → decline) from per-phase Poisson segments and shows how
//! GE's energy saving and AES residency move with the load.
//!
//! ```text
//! cargo run --release -p ge-examples --bin web_search_cluster [--seed N]
//! ```

use ge_core::{run, Algorithm, SimConfig};
use ge_examples::{opt, parse_args};
use ge_simcore::{SimDuration, SimTime};
use ge_workload::{Job, JobId, Trace, WorkloadConfig, WorkloadGenerator};

/// Stitches per-phase traces into one, shifting each phase in time and
/// renumbering job ids.
fn stitched_trace(phases: &[(f64, f64)], seed: u64) -> Trace {
    let mut jobs: Vec<Job> = Vec::new();
    let mut offset = 0.0;
    for (i, &(rate, secs)) in phases.iter().enumerate() {
        let wc = WorkloadConfig {
            horizon: SimTime::from_secs(secs),
            ..WorkloadConfig::paper_default(rate)
        };
        let phase = WorkloadGenerator::new(wc, seed.wrapping_add(i as u64)).generate();
        let shift = SimDuration::from_secs(offset);
        for j in phase.jobs() {
            jobs.push(Job::new(
                JobId(jobs.len() as u64),
                j.release + shift,
                j.deadline + shift,
                j.demand,
            ));
        }
        offset += secs;
    }
    Trace::new(jobs)
}

fn main() {
    let (_, opts) = parse_args(std::env::args().skip(1));
    let seed: u64 = opt(&opts, "seed").map_or(7, |s| s.parse().expect("seed"));

    // A compressed "day": (arrival rate, duration in seconds).
    let phases = [
        (90.0, 120.0),  // night
        (140.0, 120.0), // morning ramp
        (200.0, 120.0), // peak
        (160.0, 120.0), // afternoon
        (110.0, 120.0), // evening
    ];
    let total_secs: f64 = phases.iter().map(|p| p.1).sum();
    let trace = stitched_trace(&phases, seed);
    println!(
        "diurnal workload: {} requests over {:.0}s across {} phases\n",
        trace.len(),
        total_secs,
        phases.len()
    );

    let cfg = SimConfig {
        horizon: SimTime::from_secs(total_secs),
        ..SimConfig::paper_default()
    };

    println!(
        "{:<6} {:>9} {:>12} {:>8} {:>12}",
        "algo", "quality", "energy (J)", "AES %", "discarded"
    );
    let mut results = Vec::new();
    for alg in [Algorithm::Ge, Algorithm::Oq, Algorithm::Be, Algorithm::Fdfs] {
        let r = run(&cfg, &trace, &alg);
        println!(
            "{:<6} {:>9.4} {:>12.0} {:>8.1} {:>12}",
            r.algorithm,
            r.quality,
            r.energy_j,
            r.aes_fraction * 100.0,
            r.jobs_discarded
        );
        results.push(r);
    }

    let ge = &results[0];
    let be = &results[2];
    println!(
        "\nAcross the day GE held {:.1}% quality and cut energy {:.1}% vs best effort \
         ({:.0} J -> {:.0} J).",
        ge.quality * 100.0,
        ge.energy_saving_vs(be) * 100.0,
        be.energy_j,
        ge.energy_j,
    );
}
