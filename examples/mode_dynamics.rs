//! Watch the compensation policy work: quality and mode trajectories.
//!
//! Runs GE with per-epoch instrumentation and renders the monitored
//! quality, the AES/BQ mode signal, and the backlog as terminal plots —
//! the §III-C control loop (quality dips → BQ kicks in → quality
//! recovers → back to AES) made visible.
//!
//! ```text
//! cargo run --release -p ge-examples --bin mode_dynamics [rate] [--seed N]
//! ```

use ge_core::{run_traced, Algorithm, SimConfig};
use ge_examples::{opt, parse_args};
use ge_metrics::AsciiPlot;
use ge_simcore::SimTime;
use ge_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let (pos, opts) = parse_args(std::env::args().skip(1));
    // Default just past the region where compensation starts to matter.
    let rate: f64 = pos.first().map_or(185.0, |s| s.parse().expect("rate"));
    let seed: u64 = opt(&opts, "seed").map_or(13, |s| s.parse().expect("seed"));
    let horizon = 60.0;

    let cfg = SimConfig {
        horizon: SimTime::from_secs(horizon),
        ..SimConfig::paper_default()
    };
    let trace = WorkloadGenerator::new(
        WorkloadConfig {
            horizon: SimTime::from_secs(horizon),
            ..WorkloadConfig::paper_default(rate)
        },
        seed,
    )
    .generate();

    let (result, rt) = run_traced(&cfg, &trace, &Algorithm::Ge);
    println!(
        "λ = {rate}/s over {horizon}s: final quality {:.4}, energy {:.0} J, \
         {} mode switches, AES residency {:.1}%\n",
        result.quality,
        result.energy_j,
        result.mode_transitions,
        result.aes_fraction * 100.0
    );

    // Thin the trajectories so the plots stay readable.
    let thin = |pts: &[(f64, f64)]| -> Vec<(f64, f64)> {
        let stride = (pts.len() / 400).max(1);
        pts.iter().step_by(stride).copied().collect()
    };

    let mut q = AsciiPlot::standard("Monitored quality vs time (target 0.9)");
    q.add_series("quality", thin(rt.quality.points()));
    print!("{}", q.render());

    let mut m = AsciiPlot::standard("Execution mode vs time (0 = AES, 1 = BQ)");
    m.add_series("mode", thin(rt.mode.points()));
    print!("{}", m.render());

    let mut b = AsciiPlot::standard("Outstanding work (units) vs time");
    b.add_series("backlog", thin(rt.backlog_units.points()));
    print!("{}", b.render());

    println!(
        "\nEvery dip of the quality trace below 0.9 flips the mode signal to BQ \
         (compensation); once the cumulative monitor recovers, GE returns to AES \
         and resumes cutting."
    );
}
