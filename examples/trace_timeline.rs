//! Render a mode-dynamics timeline from a decision trace.
//!
//! Reads a JSONL trace (as written by `ge-experiments --trace` or any
//! [`ge_trace::TraceSink`] consumer), buckets the run into fixed time
//! slots, and prints per-slot mode residency, quality, energy, trigger
//! and cut activity — the paper's Fig. 1/Fig. 5 story reconstructed from
//! the event stream alone, no simulator in the loop.
//!
//! ```text
//! cargo run --release -p ge-examples --bin trace_timeline -- out.jsonl [--buckets N]
//! ```
//!
//! With no file argument the example generates its own exemplar trace
//! (GE at 185 req/s for 60 s) so it is runnable out of the box.

use ge_core::{run_with_sink, Algorithm, SimConfig};
use ge_examples::{opt, parse_args};
use ge_simcore::SimTime;
use ge_trace::{parse_jsonl, replay, TraceEvent, VecSink};
use ge_workload::{WorkloadConfig, WorkloadGenerator};

/// Per-bucket aggregates distilled from the event stream.
#[derive(Debug, Clone, Default)]
struct Bucket {
    aes_secs: f64,
    bq_secs: f64,
    energy_j: f64,
    triggers: u64,
    cuts: u64,
    arrivals: u64,
    last_quality: Option<f64>,
}

impl Bucket {
    fn mode_char(&self) -> char {
        let total = self.aes_secs + self.bq_secs;
        if total <= 0.0 {
            '·'
        } else if self.aes_secs >= self.bq_secs {
            'A'
        } else {
            'B'
        }
    }
}

/// Splits `[0, horizon]` into `n` buckets and attributes mode residency,
/// energy, and event counts to each.
fn bucketize(events: &[TraceEvent], horizon: f64, n: usize) -> Vec<Bucket> {
    let mut buckets = vec![Bucket::default(); n];
    let width = horizon / n as f64;
    let idx = |t: f64| -> usize { ((t / width) as usize).min(n - 1) };

    // Mode residency: walk the switch sequence, spreading each dwell
    // interval over the buckets it covers.
    let initial = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::RunStart { initial_mode, .. } => Some(*initial_mode),
            _ => None,
        })
        .unwrap_or(0);
    let mut mode = initial;
    let mut since = 0.0;
    // Iterate bucket *indices*, not time: recomputing the next boundary
    // from a running `t` can stall when `(i + 1) * width` rounds back onto
    // `t`, so intersect the dwell interval with each slot instead.
    let spread = |from: f64, to: f64, mode: u64, buckets: &mut Vec<Bucket>| {
        if to <= from {
            return;
        }
        for (i, b) in buckets.iter_mut().enumerate().skip(idx(from)) {
            let lo = (i as f64 * width).max(from);
            let hi = ((i + 1) as f64 * width).min(to);
            let dt = hi - lo;
            if dt > 0.0 {
                if mode == 0 {
                    b.aes_secs += dt;
                } else {
                    b.bq_secs += dt;
                }
            }
            if hi >= to {
                break;
            }
        }
    };
    for ev in events {
        match ev {
            TraceEvent::ModeSwitch { t, to_mode, .. } => {
                spread(since, (*t).min(horizon), mode, &mut buckets);
                mode = *to_mode;
                since = *t;
            }
            TraceEvent::ExecSlice { t, energy_j, .. } => {
                buckets[idx((*t).min(horizon))].energy_j += energy_j;
            }
            TraceEvent::TriggerFired { t, .. } => {
                buckets[idx((*t).min(horizon))].triggers += 1;
            }
            TraceEvent::LfCut { t, .. } | TraceEvent::SecondCut { t, .. } => {
                buckets[idx((*t).min(horizon))].cuts += 1;
            }
            TraceEvent::JobArrival { t, .. } => {
                buckets[idx((*t).min(horizon))].arrivals += 1;
            }
            TraceEvent::QualitySample { t, quality, .. } => {
                buckets[idx((*t).min(horizon))].last_quality = Some(*quality);
            }
            _ => {}
        }
    }
    spread(since, horizon, mode, &mut buckets);
    buckets
}

fn main() {
    let (pos, opts) = parse_args(std::env::args().skip(1));
    let n: usize = opt(&opts, "buckets").map_or(60, |s| s.parse().expect("buckets"));
    assert!(n > 0, "--buckets must be positive");

    let events = match pos.first() {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            parse_jsonl(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
        }
        None => {
            eprintln!("no trace file given — generating an exemplar (GE, 185 req/s, 60 s)");
            let horizon = SimTime::from_secs(60.0);
            let cfg = SimConfig {
                horizon,
                ..SimConfig::paper_default()
            };
            let wl = WorkloadGenerator::new(
                WorkloadConfig {
                    horizon,
                    ..WorkloadConfig::paper_default(185.0)
                },
                13,
            )
            .generate();
            let mut sink = VecSink::new();
            run_with_sink(&cfg, &wl, &Algorithm::Ge, None, &mut sink);
            sink.into_events()
        }
    };

    // Traces written by `--trace` lead with a run_meta provenance
    // header; validate and skip it before looking for run_start.
    let events = match ge_trace::strip_header(&events) {
        Ok(rest) => rest.to_vec(),
        Err(e) => {
            eprintln!("bad trace header: {e}");
            std::process::exit(1);
        }
    };
    let Some(TraceEvent::RunStart {
        algorithm,
        cores,
        budget_w,
        q_ge,
        horizon_s,
        ..
    }) = events.first().cloned()
    else {
        eprintln!("trace does not begin with a run_start event");
        std::process::exit(1);
    };
    println!(
        "{algorithm} on {cores} cores, budget {budget_w} W, Q_GE {q_ge}, \
         horizon {horizon_s:.1} s — {} events\n",
        events.len()
    );

    let buckets = bucketize(&events, horizon_s, n);
    let width = horizon_s / n as f64;

    // The one-line mode strip: the Fig. 1 story at a glance.
    let strip: String = buckets.iter().map(Bucket::mode_char).collect();
    println!("mode  [{strip}]  (A = AES, B = BQ)\n");

    println!(
        "{:>12}  mode  {:>8}  {:>10}  {:>8}  {:>5}  {:>8}",
        "t [s]", "quality", "energy [J]", "triggers", "cuts", "arrivals"
    );
    let mut quality = f64::NAN;
    for (i, b) in buckets.iter().enumerate() {
        if let Some(q) = b.last_quality {
            quality = q;
        }
        println!(
            "{:>5.1}-{:<6.1}  {}     {:>8.4}  {:>10.1}  {:>8}  {:>5}  {:>8}",
            i as f64 * width,
            (i + 1) as f64 * width,
            b.mode_char(),
            quality,
            b.energy_j,
            b.triggers,
            b.cuts,
            b.arrivals,
        );
    }

    // Close the loop: verify the trace is internally consistent.
    match replay(&events) {
        Ok(report) => println!("\n{}", report.render()),
        Err(e) => {
            eprintln!("\nreplay failed: {e:?}");
            std::process::exit(1);
        }
    }
}
