//! Side-by-side comparison of every scheduling policy in the catalogue.
//!
//! ```text
//! cargo run --release -p ge-examples --bin policy_playground \
//!     [rate] [--seed N] [--random-windows true] [--qge 0.95]
//! ```
//!
//! Runs each algorithm on the same trace and ranks them by energy among
//! the quality-satisfying ones — the paper's core comparison (Fig. 3/4)
//! as an interactive tool.

use ge_core::{run, Algorithm, SimConfig};
use ge_examples::{opt, parse_args, summary_line};
use ge_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let (pos, opts) = parse_args(std::env::args().skip(1));
    let rate: f64 = pos.first().map_or(150.0, |s| s.parse().expect("rate"));
    let seed: u64 = opt(&opts, "seed").map_or(3, |s| s.parse().expect("seed"));
    let random_windows = opt(&opts, "random-windows") == Some("true");
    let q_ge: f64 = opt(&opts, "qge").map_or(0.9, |s| s.parse().expect("qge"));

    let cfg = SimConfig {
        q_ge,
        ..SimConfig::paper_default()
    };
    let wc = if random_windows {
        WorkloadConfig::paper_random_windows(rate)
    } else {
        WorkloadConfig::paper_default(rate)
    };
    let trace = WorkloadGenerator::new(wc, seed).generate();
    println!(
        "λ = {rate}/s, Q_GE = {q_ge}, windows = {}, {} requests\n",
        if random_windows {
            "150-500ms random"
        } else {
            "150ms fixed"
        },
        trace.len()
    );

    let algorithms = if random_windows {
        Algorithm::fig4_set()
    } else {
        Algorithm::fig3_set()
    };
    let mut results: Vec<_> = algorithms
        .iter()
        .map(|alg| run(&cfg, &trace, alg))
        .collect();

    for r in &results {
        println!("{}", summary_line(r));
    }

    // Rank: quality-satisfying first, then by energy.
    results.sort_by(|a, b| {
        let oka = a.quality >= q_ge - 0.005;
        let okb = b.quality >= q_ge - 0.005;
        okb.cmp(&oka)
            .then(a.energy_j.partial_cmp(&b.energy_j).expect("finite energy"))
    });
    let winner = &results[0];
    println!(
        "\nBest quality-satisfying policy at this load: {} ({:.0} J, quality {:.4}).",
        winner.algorithm, winner.energy_j, winner.quality
    );
}
