//! Tail-latency report: response-time percentiles per policy.
//!
//! The paper's context is interactive services, where tail latency is the
//! currency of user experience (its deadline model encodes a 150 ms
//! budget). This example reports the mean/P95/P99 response latency each
//! policy delivers at a given load, next to its quality and energy — the
//! three-way trade a service operator actually navigates.
//!
//! ```text
//! cargo run --release -p ge-examples --bin latency_report [rate] [--seed N]
//! ```

use ge_core::{run, Algorithm, SimConfig};
use ge_examples::{opt, parse_args};
use ge_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let (pos, opts) = parse_args(std::env::args().skip(1));
    let rate: f64 = pos.first().map_or(170.0, |s| s.parse().expect("rate"));
    let seed: u64 = opt(&opts, "seed").map_or(5, |s| s.parse().expect("seed"));

    let cfg = SimConfig::paper_default();
    let trace = WorkloadGenerator::new(WorkloadConfig::paper_default(rate), seed).generate();
    println!(
        "λ = {rate}/s, deadline budget 150 ms, {} requests\n",
        trace.len()
    );
    println!(
        "{:<6} {:>8} {:>11} {:>10} {:>10} {:>10} {:>10}",
        "algo", "quality", "energy (J)", "mean (ms)", "p95 (ms)", "p99 (ms)", "discarded"
    );

    for alg in [
        Algorithm::Ge,
        Algorithm::Be,
        Algorithm::Fcfs,
        Algorithm::Fdfs,
        Algorithm::Sjf,
    ] {
        let r = run(&cfg, &trace, &alg);
        println!(
            "{:<6} {:>8.4} {:>11.0} {:>10.1} {:>10.1} {:>10.1} {:>10}",
            r.algorithm,
            r.quality,
            r.energy_j,
            r.mean_latency_ms,
            r.p95_latency_ms,
            r.p99_latency_ms,
            r.jobs_discarded
        );
    }

    println!(
        "\nEvery served request finishes inside its deadline window by construction \
         (the scheduler never runs a job past its deadline), so P99 ≤ 150 ms for all \
         policies; what differs is how much quality each one salvages and at what \
         energy. GE trades the tail of each job's *work*, not the tail of its *latency*."
    );
}
