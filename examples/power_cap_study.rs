//! Right-sizing a rack power cap with GE.
//!
//! Sweeps the server's dynamic-power budget at a fixed arrival rate and
//! prints the quality/energy frontier — the operational question behind
//! the paper's Fig. 10: *how small a cap can this service run under while
//! keeping quality good enough?*
//!
//! ```text
//! cargo run --release -p ge-examples --bin power_cap_study [rate] [--seed N]
//! ```

use ge_core::{run, Algorithm, SimConfig};
use ge_examples::{opt, parse_args};
use ge_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let (pos, opts) = parse_args(std::env::args().skip(1));
    let rate: f64 = pos.first().map_or(170.0, |s| s.parse().expect("rate"));
    let seed: u64 = opt(&opts, "seed").map_or(11, |s| s.parse().expect("seed"));

    let trace = WorkloadGenerator::new(WorkloadConfig::paper_default(rate), seed).generate();
    println!("load: {rate} req/s ({} requests over 600s)\n", trace.len());
    println!(
        "{:>10} {:>9} {:>12} {:>10} {:>9}",
        "budget (W)", "quality", "energy (J)", "avg W", "meets Q_GE"
    );

    let mut min_ok_budget: Option<f64> = None;
    for budget in [60.0, 80.0, 120.0, 160.0, 240.0, 320.0, 480.0] {
        let cfg = SimConfig {
            budget_w: budget,
            ..SimConfig::paper_default()
        };
        let r = run(&cfg, &trace, &Algorithm::Ge);
        let ok = r.quality >= cfg.q_ge - 0.005;
        if ok && min_ok_budget.is_none() {
            min_ok_budget = Some(budget);
        }
        println!(
            "{:>10.0} {:>9.4} {:>12.0} {:>10.1} {:>9}",
            budget,
            r.quality,
            r.energy_j,
            r.average_power_w(600.0),
            if ok { "yes" } else { "no" }
        );
    }

    match min_ok_budget {
        Some(b) => println!(
            "\nSmallest swept cap sustaining Q_GE at {rate} req/s: {b:.0} W \
             (the paper's default provisions 320 W)."
        ),
        None => {
            println!("\nNo swept cap sustained Q_GE at {rate} req/s — the service is overloaded.")
        }
    }
}
